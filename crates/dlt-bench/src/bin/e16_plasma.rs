//! e16 — Plasma nested chains (paper §VI-A).
//!
//! Measures the §VI-A Plasma value proposition: a child chain carries
//! arbitrary transfer volume while broadcasting only Merkle roots to
//! the root chain; Byzantine operators are caught by fraud proofs and
//! penalised.

use dlt_bench::{banner, Table};
use dlt_crypto::keys::Address;
use dlt_scaling::plasma::{ChildTx, PlasmaChain};

fn main() {
    let _report = banner("e16", "Plasma nested chains", "§VI-A");

    println!("\nroot-chain footprint vs child-chain volume:");
    let mut table = Table::new([
        "child txs",
        "child blocks",
        "root-chain txs",
        "amplification",
    ]);
    for (blocks, txs_per_block) in [(5u64, 100u64), (10, 500), (20, 2_000)] {
        let mut plasma = PlasmaChain::new(10_000);
        plasma
            .deposit(Address::from_label("whale"), u64::MAX / 2)
            .unwrap();
        for _ in 0..blocks {
            for _ in 0..txs_per_block {
                plasma
                    .submit(Address::from_label("whale"), Address::from_label("user"), 1)
                    .unwrap();
            }
            plasma.commit_block().unwrap();
        }
        let child_txs = blocks * txs_per_block;
        table.row([
            child_txs.to_string(),
            blocks.to_string(),
            plasma.root_chain_txs.to_string(),
            format!("{:.0}x", child_txs as f64 / plasma.root_chain_txs as f64),
        ]);
    }
    table.print();

    println!("\nByzantine operator: fraud proof and penalty:");
    let mut plasma = PlasmaChain::new(50_000);
    plasma
        .deposit(Address::from_label("victim"), 1_000)
        .unwrap();
    let forged = ChildTx {
        from: Address::from_label("ghost"),
        to: Address::from_label("operator-pocket"),
        amount: 1_000_000,
        tag: 1,
    };
    plasma.commit_block_byzantine(vec![forged]).unwrap();
    println!("operator committed a block containing a 1,000,000 transfer from an unfunded account");
    let (tx, proof) = plasma
        .build_fraud_proof(0, 0)
        .expect("stakeholder holds the data");
    let slashed = plasma
        .prove_fraud(0, tx, &proof)
        .expect("fraud is provable");
    println!(
        "fraud proven from the Merkle commitment alone -> operator bond slashed: {slashed}; \
         chain halted: {}",
        plasma.is_halted()
    );
    let exit = plasma.exit(Address::from_label("victim")).unwrap();
    println!("victim exits with verified balance: {exit} (deposit intact)");
    println!(
        "\nreading: \"only Merkle roots created in the sidechains are periodically \
         broadcasted to the main network during non-faulty states … for faulty \
         states, stakeholders need to display proof of fraud and the Byzantine \
         node gets penalized\" — both paths exercised above."
    );
}
