//! e10 — Consensus mechanisms (paper §III).
//!
//! Measures the three leader/ordering mechanisms side by side:
//! PoW's hash-power lottery fairness, PoS's stake-weighted selection
//! with slashing, and Nano's weighted representative voting.

use dlt_bench::{banner, trace, Table};
use dlt_blockchain::pos::{
    CasperFfg, Checkpoint, EquivocationDetector, FfgOutcome, FfgVote, ValidatorSet,
};
use dlt_blockchain::pow::sample_mining_time;
use dlt_crypto::keys::Address;
use dlt_crypto::sha256::sha256;
use dlt_dag::voting::Election;
use dlt_sim::rng::SimRng;

fn main() {
    let _report = banner("e10", "consensus mechanisms", "§III");
    // DLT_TRACE=1 records per-mechanism milestones.
    let trace = trace::from_env("e10");
    let mut rng = SimRng::new(10);

    // --- PoW lottery fairness: win share tracks hash share. ---
    println!("\nPoW leader election: block share vs hash-power share");
    let shares = [0.05f64, 0.15, 0.30, 0.50];
    let mut wins = [0u64; 4];
    let rounds = 20_000;
    let difficulty = 1_000;
    for _ in 0..rounds {
        let mut best = 0usize;
        let mut best_time = f64::INFINITY;
        for (i, share) in shares.iter().enumerate() {
            let t = sample_mining_time(&mut rng, share * 1_000.0, difficulty).as_secs_f64();
            if t < best_time {
                best_time = t;
                best = i;
            }
        }
        wins[best] += 1;
    }
    let mut table = Table::new(["miner hash share", "expected win share", "measured"]);
    for (share, win) in shares.iter().zip(wins) {
        trace.mark("pow.lottery_wins", win);
        table.row([
            format!("{:.0}%", share * 100.0),
            format!("{:.0}%", share * 100.0),
            format!("{:.1}%", 100.0 * win as f64 / rounds as f64),
        ]);
    }
    table.print();

    // --- PoS: stake-weighted proposer election. ---
    println!("\nPoS proposer election: proposal share vs stake share");
    let mut validators = ValidatorSet::new();
    let stakes = [
        ("whale", 500u64),
        ("mid", 300),
        ("small", 150),
        ("tiny", 50),
    ];
    for (name, stake) in stakes {
        validators.deposit(Address::from_label(name), stake);
    }
    let mut counts = std::collections::HashMap::new();
    let slots = 20_000u64;
    for slot in 0..slots {
        let parent = sha256(&slot.to_be_bytes());
        let proposer = validators.select_proposer(&parent, slot).unwrap();
        *counts.entry(proposer).or_insert(0u64) += 1;
    }
    let mut table = Table::new(["validator", "stake share", "proposal share"]);
    for (name, stake) in stakes {
        let address = Address::from_label(name);
        table.row([
            name.to_string(),
            format!("{:.1}%", 100.0 * stake as f64 / 1000.0),
            format!(
                "{:.1}%",
                100.0 * *counts.get(&address).unwrap_or(&0) as f64 / slots as f64
            ),
        ]);
    }
    table.print();

    // --- PoS slashing: equivocation burns the stake. ---
    println!("\nPoS slashing (\"burning stake has the same economic effect as");
    println!("dismantling an attacker's mining equipment\"):");
    let mut detector = EquivocationDetector::new();
    let evil = Address::from_label("whale");
    detector.observe(evil, 42, sha256(b"block-a"));
    let evidence = detector
        .observe(evil, 42, sha256(b"block-b"))
        .expect("double-sign");
    let burned = validators.slash(&evidence.proposer);
    trace.mark("pos.stake_burned", burned);
    println!(
        "validator whale double-signed slot {} -> {} stake burned; total stake {} -> {}",
        evidence.slot,
        burned,
        1000,
        validators.total_stake()
    );

    // --- Casper FFG finality. ---
    let mut ffg = CasperFfg::new(
        {
            let mut set = ValidatorSet::new();
            for (name, stake) in stakes {
                set.deposit(Address::from_label(name), stake);
            }
            set
        },
        sha256(b"genesis"),
    );
    let genesis_cp = Checkpoint {
        epoch: 0,
        block: sha256(b"genesis"),
    };
    let e1 = Checkpoint {
        epoch: 1,
        block: sha256(b"epoch-1"),
    };
    let e2 = Checkpoint {
        epoch: 2,
        block: sha256(b"epoch-2"),
    };
    for (name, _) in stakes {
        ffg.process_vote(FfgVote {
            validator: Address::from_label(name),
            source: genesis_cp,
            target: e1,
        });
    }
    let mut outcome = FfgOutcome::Accepted;
    for (name, _) in stakes {
        outcome = ffg.process_vote(FfgVote {
            validator: Address::from_label(name),
            source: e1,
            target: e2,
        });
        if matches!(outcome, FfgOutcome::Finalized { .. }) {
            break;
        }
    }
    println!(
        "\nCasper FFG: epoch-1 checkpoint justified then finalized by 2/3 stake \
         votes -> {outcome:?}; finalized checkpoints cannot be reverted (§IV-A's \
         announced finality)."
    );

    // --- Nano: weighted representative conflict vote. ---
    println!("\nDAG conflict vote: weight decides, not node count");
    let mut election = Election::new();
    let honest = sha256(b"honest-send");
    let attack = sha256(b"double-spend");
    election.vote(Address::from_label("big-rep"), 700, honest);
    for i in 0..9 {
        election.vote(Address::from_label(&format!("small-{i}")), 30, attack);
    }
    let (winner, weight) = election.leader().unwrap();
    trace.mark("dag.election_winner_weight", weight);
    println!(
        "9 small representatives (270 weight) back the double spend; 1 large (700) \
         backs the honest send -> winner: {} with weight {weight}",
        if winner == honest { "honest" } else { "attack" }
    );
    assert_eq!(winner, honest);
    println!(
        "\"the winning transaction is the one that gained the most votes with \
         regards to the voters weight\" (§III-B)."
    );
}
