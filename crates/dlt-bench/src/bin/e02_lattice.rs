//! e02 — The block-lattice (paper §II-B, Fig. 2).
//!
//! Builds a lattice over several accounts, prints each account chain
//! and the cross-links between them (a send on one chain referenced by
//! a receive on another) — the structure of Fig. 2.

use dlt_bench::{banner, Table};
use dlt_dag::account::NanoAccount;
use dlt_dag::block::BlockKind;
use dlt_dag::lattice::{Lattice, LatticeParams};

fn main() {
    let _report = banner("e02", "the block-lattice", "§II-B, Fig. 2");
    let params = LatticeParams {
        work_difficulty_bits: 4,
        verify_signatures: true,
        verify_work: true,
    };
    let mut genesis = NanoAccount::from_seed([1u8; 32], 6, 4);
    let mut lattice = Lattice::new(params, genesis.genesis_block(1_000_000));
    let mut alice = NanoAccount::from_seed([2u8; 32], 6, 4);
    let mut bob = NanoAccount::from_seed([3u8; 32], 6, 4);

    // Fund alice and bob; then alice pays bob twice; bob pays alice.
    for (account, amount) in [(&mut alice, 10_000u64), (&mut bob, 5_000)] {
        let send = genesis.send(account.address(), amount).expect("funded");
        let hash = lattice.process(send).expect("valid");
        let receive = account.receive(hash, amount).expect("fresh key");
        lattice.process(receive).expect("valid");
    }
    for amount in [100u64, 200] {
        let send = alice.send(bob.address(), amount).expect("funded");
        let hash = lattice.process(send).expect("valid");
        let receive = bob.receive(hash, amount).expect("key ok");
        lattice.process(receive).expect("valid");
    }
    let send = bob.send(alice.address(), 50).expect("funded");
    let hash = lattice.process(send).expect("valid");
    let receive = alice.receive(hash, 50).expect("key ok");
    lattice.process(receive).expect("valid");

    // Print every account chain (the vertical chains of Fig. 2).
    for (address, info) in lattice.accounts_iter() {
        let label = if address == genesis.address() {
            "genesis"
        } else if address == alice.address() {
            "alice"
        } else {
            "bob"
        };
        println!("\naccount-chain of {label} ({address}):");
        let mut table = Table::new(["#", "block", "kind", "balance after", "cross-link"]);
        for (i, block) in lattice.chain_of(&address).iter().enumerate() {
            let (kind, link) = match block.kind {
                BlockKind::Send { destination } => ("send", format!("→ {destination}")),
                BlockKind::Receive { source } if source.is_zero() => {
                    ("open (mint)", "-".to_string())
                }
                BlockKind::Receive { source } => ("receive", format!("← send {}", source.short())),
                BlockKind::Change => ("change", "-".to_string()),
            };
            table.row([
                i.to_string(),
                block.hash().short(),
                kind.to_string(),
                block.balance.to_string(),
                link,
            ]);
        }
        table.print();
        println!(
            "  head: {}  blocks: {}  balance: {}",
            info.head.short(),
            info.block_count,
            info.balance
        );
    }

    println!(
        "\nlattice totals: {} blocks across {} account chains, {} pending, supply conserved: {}",
        lattice.block_count(),
        lattice.account_count(),
        lattice.pending_count(),
        lattice.circulating_total() == lattice.total_supply()
    );
    assert_eq!(lattice.circulating_total(), lattice.total_supply());
}
