//! e12 — Payment channels (paper §VI-A, Lightning/Raiden).
//!
//! Measures the §VI-A channel value proposition: a prepaid channel
//! turns two on-chain transactions into unlimited off-chain updates,
//! multiplying effective throughput; the challenge mechanism keeps
//! closes honest. Also exercises multi-hop routing across a small
//! channel graph.

use dlt_bench::{banner, smoke, Table};
use dlt_core::throughput::bitcoin_tps_range;
use dlt_crypto::keys::{Address, PublicKey};
use dlt_scaling::channels::{ChannelNetwork, ChannelPair};

fn main() {
    let _report = banner("e12", "off-chain payment channels", "§VI-A");

    println!("\non-chain cost vs off-chain volume per channel lifecycle:");
    let mut table = Table::new([
        "off-chain payments",
        "on-chain txs",
        "amplification",
        "final A/B balances",
    ]);
    // DLT_SMOKE drops the 10,000-payment lifecycle (WOTS-signing every
    // update dominates the runtime); the amplification trend survives.
    let volumes: &[u64] = if smoke() {
        &[10, 100, 500]
    } else {
        &[10, 100, 1_000, 10_000]
    };
    for &volume in volumes {
        let mut network = ChannelNetwork::new();
        // Key capacity must cover the channel's lifetime volume:
        // 2^key_height >= volume.
        let key_height = (64 - volume.leading_zeros()).max(10);
        let mut pair = ChannelPair::open_with_capacity(&mut network, volume, volume, 0, key_height);
        for _ in 0..volume {
            let update = pair.pay_a_to_b(1).expect("funded");
            network.apply_update(&update).expect("valid");
        }
        let settlement = network.close_cooperative(pair.id).expect("open");
        table.row([
            volume.to_string(),
            settlement.onchain_txs.to_string(),
            format!("{}x", volume / settlement.onchain_txs),
            format!("{}/{}", settlement.payout_a.1, settlement.payout_b.1),
        ]);
    }
    table.print();

    // Effective network TPS with channels layered over Bitcoin.
    let (_, base_tps) = bitcoin_tps_range();
    println!("\neffective throughput over a Bitcoin-like base layer ({base_tps:.1} TPS):");
    let mut table = Table::new([
        "channel lifetime payments",
        "base-layer TPS spent on channels",
        "effective payment TPS",
    ]);
    for volume in [100u64, 1_000, 10_000] {
        // Every channel consumes 2 on-chain txs for `volume` payments.
        let effective = base_tps * volume as f64 / 2.0;
        table.row([
            volume.to_string(),
            format!("{base_tps:.1}"),
            format!("{effective:.0}"),
        ]);
    }
    table.print();
    println!(
        "10,000-payment channels lift a ~7 TPS chain past Visa's 56,000 TPS — \
         the §VI-A argument for Lightning/Raiden."
    );

    // Multi-hop routing.
    println!("\nmulti-hop routing over a 6-party channel graph:");
    let mut network = ChannelNetwork::new();
    let parties: Vec<Address> = (0..6)
        .map(|i| Address::from_label(&format!("party-{i}")))
        .collect();
    let key = PublicKey::default();
    // A ring plus one chord.
    for i in 0..6 {
        network.open(parties[i], key, 1_000, parties[(i + 1) % 6], key, 1_000);
    }
    network.open(parties[0], key, 1_000, parties[3], key, 1_000);
    let route = network
        .find_route(parties[1], parties[4], 400)
        .expect("route exists");
    println!(
        "route from party-1 to party-4 for 400 units: {} hops",
        route.len()
    );
    network
        .route_payment(parties[1], &route, 400)
        .expect("capacity");
    println!(
        "after payment: total off-chain updates {}, on-chain txs {} (all opens)",
        network.total_updates, network.total_onchain_txs
    );

    // Cheating is punished.
    println!("\ncheat handling (stale-state forced close):");
    let mut network = ChannelNetwork::new();
    let mut pair = ChannelPair::open(&mut network, 99, 100, 100);
    let stale = pair.pay_a_to_b(10).expect("funded");
    network.apply_update(&stale).expect("valid");
    let latest = pair.pay_a_to_b(60).expect("funded");
    network.apply_update(&latest).expect("valid");
    network
        .close_forced(pair.id, pair.party_a(), &stale, 1_000)
        .expect("posted");
    let settlement = network.challenge(pair.id, &latest, 500).expect("in window");
    println!(
        "A posted a stale state (A:90/B:110 instead of A:30/B:170); B challenged \
         with the newer co-signed state -> A forfeits everything: payout A={} B={}",
        settlement.payout_a.1, settlement.payout_b.1
    );
    assert_eq!(settlement.payout_a.1, 0);
}
