//! e17 — The tangle, the paper's other DAG shape (footnote 1).
//!
//! Compares the two DAG structures the paper names: Nano's
//! block-lattice (one chain per account, §II-B) against an IOTA-style
//! tangle (every transaction approves two tips). Measures tip-pool
//! dynamics, confirmation by cumulative weight, and the effect of the
//! MCMC tip-selection bias α.

use dlt_bench::{banner, smoke, trace, Table};
use dlt_crypto::sha256::sha256;
use dlt_dag::tangle::{Tangle, TipSelection};
use dlt_sim::rng::SimRng;

fn main() {
    let _report = banner(
        "e17",
        "IOTA-style tangle vs block-lattice structure",
        "footnote 1, §II-B",
    );

    // Concurrency matters: transactions arriving within one network
    // round-trip select tips from the same snapshot (they cannot see
    // each other). We attach in rounds of `k` concurrent transactions.
    // DLT_SMOKE shrinks the attachment rounds; the steady-state tip
    // counts are noisier but the strategy ordering is unchanged.
    // DLT_TRACE=1 exports the tangle's internal work metrics per
    // sweep point: attachment count, weight updates, and the mean
    // ancestor count touched per attach (in thousandths).
    let trace = trace::from_env("e17");
    let rounds = if smoke() { 40 } else { 200 };
    println!("\ntip-pool size and confirmation after {rounds} rounds × k concurrent arrivals:");
    let mut table = Table::new([
        "tip selection",
        "k (arrival rate)",
        "tips steady-state",
        "confirmed fraction",
    ]);
    for (label, strategy) in [
        ("uniform random", TipSelection::UniformRandom),
        (
            "weighted walk α=0.05",
            TipSelection::WeightedWalk { alpha: 0.05 },
        ),
        (
            "weighted walk α=0.3",
            TipSelection::WeightedWalk { alpha: 0.3 },
        ),
    ] {
        for k in [1u64, 5, 20] {
            let mut tangle = Tangle::new(40);
            let mut rng = SimRng::new(17);
            let mut tag = 0u64;
            for _round in 0..rounds {
                // Everyone in this round sees the same tangle snapshot.
                let parents: Vec<_> = (0..k)
                    .map(|_| tangle.select_tips(strategy, &mut rng))
                    .collect();
                for chosen in parents {
                    tangle.attach_approving(sha256(&tag.to_be_bytes()), chosen, tag);
                    tag += 1;
                }
            }
            trace.mark("sweep.arrival_rate", k);
            trace.mark(
                "tangle.attachments",
                tangle.metrics().count("tangle.attachments"),
            );
            trace.mark(
                "tangle.weight_updates",
                tangle.metrics().count("tangle.weight_updates"),
            );
            trace.mark(
                "tangle.mean_ancestors_milli",
                tangle
                    .metrics()
                    .mean("tangle.ancestors_per_attach")
                    .map_or(0, |m| (m * 1000.0) as u64),
            );
            table.row([
                label.to_string(),
                k.to_string(),
                tangle.tip_count().to_string(),
                format!("{:.2}", tangle.confirmed_fraction()),
            ]);
        }
    }
    table.print();

    println!("\nlazy-tip resistance (a parasite transaction approving only stale history):");
    let (before, after) = if smoke() { (50u64, 150u64) } else { (200, 700) };
    let mut table = Table::new([
        "tip selection".to_string(),
        format!("lazy tip weight after {} txs", after - before),
        "confirmed?".to_string(),
    ]);
    for (label, strategy) in [
        ("uniform random", TipSelection::UniformRandom),
        (
            "weighted walk α=0.3",
            TipSelection::WeightedWalk { alpha: 0.3 },
        ),
    ] {
        let mut tangle = Tangle::new(20);
        let mut rng = SimRng::new(18);
        for i in 0..before {
            tangle.attach(sha256(&i.to_be_bytes()), strategy, &mut rng);
        }
        let genesis = tangle.genesis();
        let lazy = tangle.attach_approving(sha256(b"lazy"), [genesis, genesis], 999_999);
        for i in before..after {
            tangle.attach(sha256(&i.to_be_bytes()), strategy, &mut rng);
        }
        table.row([
            label.to_string(),
            tangle.cumulative_weight(&lazy).unwrap().to_string(),
            tangle.is_confirmed(&lazy).to_string(),
        ]);
    }
    table.print();

    println!(
        "\nreading: in the lattice, *the sender's own chain* orders transactions \
         and representatives vote conflicts away; in the tangle, *placement* \
         orders them — approving fresh tips is what buys confirmation, and the \
         weighted walk starves transactions that refuse to contribute. Both are \
         \"DAG\" per the paper, with very different consensus anatomy."
    );
}
