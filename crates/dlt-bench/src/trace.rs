//! `DLT_TRACE` support for the experiment binaries.
//!
//! Setting `DLT_TRACE=1` (any non-empty value other than `0`) makes an
//! experiment capture the engine's schedule/dispatch/drop events plus
//! protocol marks into a [`TraceLog`] and dump the structured JSON
//! event log when the run finishes — to `DLT_TRACE_OUT` if set,
//! otherwise `results/trace_<experiment>.json`. When the variable is
//! unset the helper is inert: no tracer is installed, the engine's
//! emit points stay disabled, and stdout is unchanged (so the
//! byte-determinism guarantees are unaffected).

use std::path::PathBuf;

use dlt_sim::engine::{SimNode, Simulation};
use dlt_sim::time::SimTime;
use dlt_sim::trace::{NoopTracer, RecordingTracer, TraceEvent, TraceLog, Tracer};

/// One experiment's trace session; see the module docs.
pub struct ExperimentTrace {
    id: &'static str,
    log: Option<TraceLog>,
}

/// Creates the trace session for experiment `id` from the
/// environment: enabled iff `DLT_TRACE` is set to a non-empty value
/// other than `0`.
pub fn from_env(id: &'static str) -> ExperimentTrace {
    let enabled = std::env::var("DLT_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    ExperimentTrace {
        id,
        log: enabled.then(TraceLog::new),
    }
}

impl ExperimentTrace {
    /// Whether tracing is on for this run.
    pub fn enabled(&self) -> bool {
        self.log.is_some()
    }

    /// Installs a recording tracer (sharing this session's log) into a
    /// simulation. No-op when tracing is off. Repeated sweeps can
    /// install into each simulation; all events land in one log.
    pub fn install<M, N: SimNode<M>>(&self, sim: &mut Simulation<M, N>) {
        if let Some(log) = &self.log {
            sim.set_tracer(RecordingTracer::sharing(log.clone()));
        }
    }

    /// A tracer for engine-less runners (e.g.
    /// `dlt_core::ledger::run_workload_traced`): recording into this
    /// session's log when on, a no-op tracer when off.
    pub fn tracer(&self) -> Box<dyn Tracer> {
        match &self.log {
            Some(log) => Box::new(RecordingTracer::sharing(log.clone())),
            None => Box::new(NoopTracer),
        }
    }

    /// Emits a harness-level mark (timestamped at simulated zero —
    /// harness marks delimit sweep points rather than in-run moments).
    pub fn mark(&self, label: &'static str, value: u64) {
        if let Some(log) = &self.log {
            log.push(TraceEvent::Mark {
                at: SimTime::ZERO,
                label,
                value,
            });
        }
    }

    fn out_path(&self) -> PathBuf {
        if let Ok(path) = std::env::var("DLT_TRACE_OUT") {
            if !path.is_empty() {
                return PathBuf::from(path);
            }
        }
        PathBuf::from("results").join(format!("trace_{}.json", self.id))
    }
}

impl Drop for ExperimentTrace {
    fn drop(&mut self) {
        let Some(log) = &self.log else { return };
        let path = self.out_path();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let mut text = log.to_json().to_string();
        text.push('\n');
        // Diagnostics go to stderr: stdout is the byte-compared
        // experiment output.
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("trace: {} events -> {}", log.len(), path.display()),
            Err(err) => eprintln!("trace: failed to write {}: {err}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_session_is_inert() {
        // No DLT_TRACE manipulation here (tests run in parallel);
        // construct the disabled state directly.
        let trace = ExperimentTrace {
            id: "test",
            log: None,
        };
        assert!(!trace.enabled());
        trace.mark("anything", 1); // no-op, must not panic
        assert!(!trace.tracer().enabled());
    }

    #[test]
    fn enabled_session_collects_marks() {
        let trace = ExperimentTrace {
            id: "test",
            log: Some(TraceLog::new()),
        };
        trace.mark("sweep.start", 3);
        let mut tracer = trace.tracer();
        assert!(tracer.enabled());
        tracer.trace(TraceEvent::Mark {
            at: SimTime::ZERO,
            label: "x",
            value: 1,
        });
        let log = trace.log.as_ref().unwrap();
        assert_eq!(log.len(), 2);
        // Avoid the Drop file write in tests.
        std::mem::forget(trace);
    }
}
