//! Shared helpers for the experiment binaries.
//!
//! Each `src/bin/eNN_*.rs` binary regenerates one table or figure of
//! the paper (see DESIGN.md §4 for the index and EXPERIMENTS.md for the
//! paper-vs-measured record). The binaries print fixed-width text
//! tables via [`Table`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A minimal fixed-width text-table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for width in &widths {
            sep.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a byte count with a binary-ish human unit.
pub fn human_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes;
    let mut unit = 0;
    while value >= 1000.0 && unit < UNITS.len() - 1 {
        value /= 1000.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper: {paper_ref}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer-name", "200"]);
        let text = t.render();
        assert!(text.contains("| name        | value |"));
        assert!(text.contains("| longer-name | 200   |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn bytes_humanised() {
        assert_eq!(human_bytes(512.0), "512.00 B");
        assert_eq!(human_bytes(1_500.0), "1.50 KB");
        assert_eq!(human_bytes(145.95e9), "145.95 GB");
    }
}
