//! Shared helpers for the experiment binaries.
//!
//! Each `src/bin/eNN_*.rs` binary regenerates one table or figure of
//! the paper (see DESIGN.md §4 for the index and EXPERIMENTS.md for the
//! paper-vs-measured record). The binaries print fixed-width text
//! tables via [`Table`] and open with [`banner`], whose returned
//! [`Report`] guard mirrors every printed table into a JSON file when
//! `DLT_JSON_OUT` is set (CI smoke tests parse that file).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod shardnet;
pub mod trace;

use std::cell::RefCell;

use dlt_testkit::json::Json;

/// Prints one simulation's det-sanitizer dispatch hash to stdout.
///
/// Only emits when the workspace is built with
/// `--features det-sanitizer`; the default build prints nothing, so
/// the byte-compared experiment output is unchanged. Run the same
/// experiment twice with the feature on and diff the hash lines to
/// check run-to-run determinism of the full dispatch schedule.
#[cfg(feature = "det-sanitizer")]
pub fn print_dispatch_hash<M, N: dlt_sim::engine::SimNode<M>>(
    label: &str,
    sim: &dlt_sim::engine::Simulation<M, N>,
) {
    println!(
        "det-sanitizer[{label}] dispatch_hash=0x{:016x}",
        sim.dispatch_hash()
    );
}

/// No-op twin of the det-sanitizer hash printer (feature disabled).
#[cfg(not(feature = "det-sanitizer"))]
pub fn print_dispatch_hash<M, N: dlt_sim::engine::SimNode<M>>(
    _label: &str,
    _sim: &dlt_sim::engine::Simulation<M, N>,
) {
}

thread_local! {
    /// Tables printed so far on this thread, captured for [`Report`].
    static PRINTED_TABLES: RefCell<Vec<Json>> = const { RefCell::new(Vec::new()) };
}

/// A minimal fixed-width text-table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for width in &widths {
            sep.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and records it for the active
    /// [`Report`] (if any) so `DLT_JSON_OUT` captures it.
    pub fn print(&self) {
        print!("{}", self.render());
        let json = Json::object([
            (
                "headers",
                Json::Array(
                    self.headers
                        .iter()
                        .map(|h| Json::String(h.clone()))
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|row| {
                            Json::Array(row.iter().map(|c| Json::String(c.clone())).collect())
                        })
                        .collect(),
                ),
            ),
        ]);
        PRINTED_TABLES.with(|tables| tables.borrow_mut().push(json));
    }
}

/// Formats a byte count with a binary-ish human unit.
pub fn human_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes;
    let mut unit = 0;
    while value >= 1000.0 && unit < UNITS.len() - 1 {
        value /= 1000.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// Prints an experiment banner and returns the guard that writes the
/// machine-readable report on exit.
///
/// Bind the result for the whole of `main` (`let _report = banner(...)`)
/// so every table printed afterwards lands in the JSON file.
#[must_use = "bind as `let _report = banner(...)` so the JSON report is written on exit"]
pub fn banner(id: &str, title: &str, paper_ref: &str) -> Report {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper: {paper_ref}");
    println!("==============================================================");
    PRINTED_TABLES.with(|tables| tables.borrow_mut().clear());
    Report {
        id: id.to_string(),
        title: title.to_string(),
        paper_ref: paper_ref.to_string(),
    }
}

/// Whether `DLT_SMOKE` asks for tiny parameters (CI smoke runs).
///
/// Experiments with long-running sweeps scale their workloads down
/// when this is set; the output keeps its structure, only the
/// statistics get noisier.
pub fn smoke() -> bool {
    std::env::var_os("DLT_SMOKE").is_some_and(|v| !v.is_empty())
}

/// Prints a lighter divider for a second act within one experiment.
pub fn section(title: &str) {
    println!("--------------------------------------------------------------");
    println!("{title}");
    println!("--------------------------------------------------------------");
}

/// Guard returned by [`banner`]: on drop, writes the experiment id and
/// all tables printed since the banner as JSON to the path named by the
/// `DLT_JSON_OUT` environment variable (no-op when unset or empty).
///
/// The JSON is deterministic — object keys are sorted and table rows
/// keep print order — so a seeded experiment run twice produces
/// byte-identical files.
pub struct Report {
    id: String,
    title: String,
    paper_ref: String,
}

impl Drop for Report {
    fn drop(&mut self) {
        let Ok(path) = std::env::var("DLT_JSON_OUT") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let tables = PRINTED_TABLES.with(|tables| tables.borrow_mut().split_off(0));
        let json = Json::object([
            ("id", Json::String(self.id.clone())),
            ("title", Json::String(self.title.clone())),
            ("paper", Json::String(self.paper_ref.clone())),
            ("tables", Json::Array(tables)),
        ]);
        if let Err(err) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("warning: could not write {path}: {err}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer-name", "200"]);
        let text = t.render();
        assert!(text.contains("| name        | value |"));
        assert!(text.contains("| longer-name | 200   |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn bytes_humanised() {
        assert_eq!(human_bytes(512.0), "512.00 B");
        assert_eq!(human_bytes(1_500.0), "1.50 KB");
        assert_eq!(human_bytes(145.95e9), "145.95 GB");
    }
}
