//! Micro-benchmarks for ledger-level hot paths, on the in-repo
//! `dlt_testkit::bench` harness (`cargo bench --bench ledgers`).
//! Results print to stderr and land in `results/bench_ledgers.json`.

use dlt_blockchain::pow::mine_real;
use dlt_crypto::keys::Address;
use dlt_crypto::Digest;
use dlt_dag::account::NanoAccount;
use dlt_dag::block::LatticeBlock;
use dlt_dag::lattice::{Lattice, LatticeParams};
use dlt_dag::voting::{Election, Vote};
use dlt_testkit::bench::BenchSuite;

fn bench_pow(suite: &mut BenchSuite) {
    let mut nonce_salt = 0u64;
    suite.bench("pow_mine_real_d256", move || {
        let mut header = dlt_blockchain::block::BlockHeader {
            parent: Digest::ZERO,
            height: 1,
            merkle_root: Digest::ZERO,
            state_root: Digest::ZERO,
            receipts_root: Digest::ZERO,
            timestamp_micros: nonce_salt,
            difficulty: 256,
            nonce: 0,
            gas_used: 0,
            gas_limit: 0,
            proposer: Address::ZERO,
        };
        nonce_salt += 1;
        mine_real(&mut header, 1_000_000).expect("mineable")
    });
}

fn bench_lattice(suite: &mut BenchSuite) {
    let params = LatticeParams {
        work_difficulty_bits: 1,
        verify_signatures: true,
        verify_work: true,
    };
    // Key generation dominates setup; build prototypes once and clone
    // per iteration (cloning restores the unspent key state).
    let genesis_proto = NanoAccount::from_seed([1u8; 32], 8, 1);
    let bob_proto = NanoAccount::from_seed([2u8; 32], 8, 1);
    suite.bench_with_setup(
        "lattice_process_send_receive",
        || {
            let mut genesis = genesis_proto.clone();
            let lattice = Lattice::new(params, genesis.genesis_block(1_000_000));
            let mut bob = bob_proto.clone();
            let send = genesis.send(bob.address(), 10).unwrap();
            let receive = bob.receive(send.hash(), 10).unwrap();
            (lattice, send, receive)
        },
        |(mut lattice, send, receive)| {
            lattice.process(send).unwrap();
            lattice.process(receive).unwrap();
        },
    );
    let mut i = 0u64;
    suite.bench("anti_spam_work_8bits", move || {
        let root = dlt_crypto::sha256::sha256(&i.to_be_bytes());
        i += 1;
        LatticeBlock::compute_work(&root, 8)
    });
}

fn bench_voting(suite: &mut BenchSuite) {
    let candidate = dlt_crypto::sha256::sha256(b"candidate");
    let root = (Address::from_label("acct"), Digest::ZERO);
    suite.bench("vote_tally_100_reps", || {
        let mut election = Election::new();
        for i in 0..100u32 {
            let rep = Address::from_label(&format!("rep-{i}"));
            election.vote(rep, 10, candidate);
        }
        election.try_confirm(500)
    });
    let _ = Vote {
        representative: Address::from_label("r"),
        root,
        candidate,
    };
}

fn main() {
    let mut suite = BenchSuite::new("ledgers");
    bench_pow(&mut suite);
    bench_lattice(&mut suite);
    bench_voting(&mut suite);
    suite.finish();
}
