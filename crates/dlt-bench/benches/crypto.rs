//! Micro-benchmarks for the cryptographic primitives, on the in-repo
//! `dlt_testkit::bench` harness (`cargo bench --bench crypto`).
//! Results print to stderr and land in `results/bench_crypto.json`.

use std::hint::black_box;

use dlt_crypto::keys::Keypair;
use dlt_crypto::merkle::{merkle_root, MerkleTree};
use dlt_crypto::sha256::sha256;
use dlt_crypto::trie::TrieDb;
use dlt_crypto::wots::WotsKeypair;
use dlt_testkit::bench::BenchSuite;

fn bench_sha256(suite: &mut BenchSuite) {
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        suite
            .throughput_bytes(size as u64)
            .bench(&format!("sha256/{size}B"), || sha256(black_box(&data)));
    }
}

fn bench_merkle(suite: &mut BenchSuite) {
    let leaves: Vec<_> = (0..1024u64).map(|i| sha256(&i.to_be_bytes())).collect();
    suite.bench("merkle_root_1024", || merkle_root(black_box(&leaves)));
    let tree = MerkleTree::from_leaves(leaves.clone());
    suite.bench("merkle_prove_verify", || {
        let proof = tree.prove(777).unwrap();
        assert!(proof.verify(&tree.root(), &leaves[777]));
    });
}

fn bench_trie(suite: &mut BenchSuite) {
    suite.bench("trie_insert_1000", || {
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        for i in 0..1000u64 {
            root = db.insert(root, &i.to_be_bytes(), i.to_le_bytes().to_vec());
        }
        root
    });
    let mut db = TrieDb::new();
    let mut root = TrieDb::EMPTY_ROOT;
    for i in 0..10_000u64 {
        root = db.insert(root, &i.to_be_bytes(), i.to_le_bytes().to_vec());
    }
    suite.bench("trie_get_in_10k", || {
        db.get(root, black_box(&7_777u64.to_be_bytes()))
    });
}

fn bench_signatures(suite: &mut BenchSuite) {
    let msg = sha256(b"benchmark message");
    let wots = WotsKeypair::from_seed([1u8; 32]);
    let sig = wots.sign(&msg);
    suite.bench("wots_sign", || wots.sign(black_box(&msg)));
    suite.bench("wots_verify", || {
        assert!(sig.verify(&msg, &wots.public_digest()));
    });
    suite.bench("mss_keygen_h6", || {
        Keypair::mss_from_seed(black_box([2u8; 32]), 6)
    });
    let mut mss = Keypair::mss_from_seed([3u8; 32], 10);
    let public = mss.public_key();
    let mss_sig = mss.sign(&msg).unwrap();
    suite.bench("mss_verify", || assert!(mss_sig.verify(&msg, &public)));
}

fn main() {
    let mut suite = BenchSuite::new("crypto");
    bench_sha256(&mut suite);
    bench_merkle(&mut suite);
    bench_trie(&mut suite);
    bench_signatures(&mut suite);
    suite.finish();
}
