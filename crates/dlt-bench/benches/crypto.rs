//! Criterion benches for the cryptographic primitives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlt_crypto::keys::Keypair;
use dlt_crypto::merkle::{merkle_root, MerkleTree};
use dlt_crypto::sha256::sha256;
use dlt_crypto::trie::TrieDb;
use dlt_crypto::wots::WotsKeypair;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| sha256(std::hint::black_box(&data))));
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<_> = (0..1024u64).map(|i| sha256(&i.to_be_bytes())).collect();
    c.bench_function("merkle_root_1024", |b| {
        b.iter(|| merkle_root(std::hint::black_box(&leaves)))
    });
    let tree = MerkleTree::from_leaves(leaves.clone());
    c.bench_function("merkle_prove_verify", |b| {
        b.iter(|| {
            let proof = tree.prove(777).unwrap();
            assert!(proof.verify(&tree.root(), &leaves[777]));
        })
    });
}

fn bench_trie(c: &mut Criterion) {
    c.bench_function("trie_insert_1000", |b| {
        b.iter(|| {
            let mut db = TrieDb::new();
            let mut root = TrieDb::EMPTY_ROOT;
            for i in 0..1000u64 {
                root = db.insert(root, &i.to_be_bytes(), i.to_le_bytes().to_vec());
            }
            root
        })
    });
    let mut db = TrieDb::new();
    let mut root = TrieDb::EMPTY_ROOT;
    for i in 0..10_000u64 {
        root = db.insert(root, &i.to_be_bytes(), i.to_le_bytes().to_vec());
    }
    c.bench_function("trie_get_in_10k", |b| {
        b.iter(|| db.get(root, std::hint::black_box(&7_777u64.to_be_bytes())))
    });
}

fn bench_signatures(c: &mut Criterion) {
    let msg = sha256(b"benchmark message");
    let wots = WotsKeypair::from_seed([1u8; 32]);
    let sig = wots.sign(&msg);
    c.bench_function("wots_sign", |b| b.iter(|| wots.sign(std::hint::black_box(&msg))));
    c.bench_function("wots_verify", |b| {
        b.iter(|| assert!(sig.verify(&msg, &wots.public_digest())))
    });
    c.bench_function("mss_keygen_h6", |b| {
        b.iter(|| Keypair::mss_from_seed(std::hint::black_box([2u8; 32]), 6))
    });
    let mut mss = Keypair::mss_from_seed([3u8; 32], 10);
    let public = mss.public_key();
    let mss_sig = mss.sign(&msg).unwrap();
    c.bench_function("mss_verify", |b| {
        b.iter(|| assert!(mss_sig.verify(&msg, &public)))
    });
}

criterion_group!(benches, bench_sha256, bench_merkle, bench_trie, bench_signatures);
criterion_main!(benches);
