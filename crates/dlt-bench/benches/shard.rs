//! Shard-executor benchmark: serial vs parallel epoch-barrier
//! execution of the e13 shard-network cell
//! (`cargo bench --bench shard`).
//!
//! For each shard count K the same `ShardNetParams` cell runs once on
//! the serial path (`threads = 1`) and once with K worker threads; the
//! determinism contract (DESIGN.md §3d) says both produce identical
//! outcomes, so this bench first asserts that and then times the two
//! paths. The cell is deliberately heavier than the e13 sweep cells so
//! per-epoch simulation work amortises the barrier cost.
//!
//! Besides the suite's usual `results/bench_shard.json`, this writes
//! `BENCH_shard.json` with per-K serial/parallel medians and speedups
//! plus the host's core count — parallel speedup is bounded by
//! physical parallelism, so a 1-core runner honestly reports ~1x.

use dlt_bench::shardnet::{run_cell, ShardNetParams};
use dlt_sim::shard::mix;
use dlt_sim::time::SimTime;
use dlt_testkit::bench::BenchSuite;
use dlt_testkit::json::Json;

const SHARD_COUNTS: [usize; 4] = [2, 4, 8, 16];

fn bench_cell(k: usize) -> ShardNetParams {
    ShardNetParams {
        shards: k,
        capacity: 200.0,
        cross_fraction: 0.3,
        offered_per_shard: 600.0,
        duration: 5.0,
        epoch_len: SimTime::from_millis(500),
        cross_latency: SimTime::from_millis(100),
        replicas: 2,
        seed: mix(mix(0, 0xbe), k as u64),
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Sanity: the parallel path must be outcome-identical to serial on
    // every benchmarked cell before we bother timing it.
    for &k in &SHARD_COUNTS {
        let serial = run_cell(&bench_cell(k), 1);
        let parallel = run_cell(&bench_cell(k), k);
        assert_eq!(
            (
                serial.completed,
                serial.cross_messages,
                serial.combined_hash
            ),
            (
                parallel.completed,
                parallel.cross_messages,
                parallel.combined_hash
            ),
            "serial and parallel shard execution diverged at K={k}"
        );
        assert_eq!(serial.metrics.to_string(), parallel.metrics.to_string());
    }
    eprintln!("scenario: e13 shard-network cell, {cores} core(s) available");

    let mut suite = BenchSuite::new("shard");
    for &k in &SHARD_COUNTS {
        let params = bench_cell(k);
        suite.bench_with_setup(
            &format!("cell_k{k}/serial"),
            || (),
            move |()| run_cell(&params, 1),
        );
        suite.bench_with_setup(
            &format!("cell_k{k}/parallel"),
            || (),
            move |()| run_cell(&params, k),
        );
    }
    let results = suite.finish();

    let median = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .expect("bench ran")
    };
    let mut rows = Vec::new();
    for &k in &SHARD_COUNTS {
        let serial_ns = median(&format!("cell_k{k}/serial"));
        let parallel_ns = median(&format!("cell_k{k}/parallel"));
        let speedup = serial_ns / parallel_ns;
        eprintln!(
            "K={k:<2} median: serial {:.2} ms, parallel {:.2} ms -> {speedup:.2}x",
            serial_ns / 1e6,
            parallel_ns / 1e6
        );
        rows.push(Json::object([
            ("shards".to_string(), Json::number(k as f64)),
            ("serial_median_ns".to_string(), Json::number(serial_ns)),
            ("parallel_median_ns".to_string(), Json::number(parallel_ns)),
            ("speedup_median".to_string(), Json::number(speedup)),
        ]));
    }

    let dir = std::env::var("DLT_BENCH_DIR").unwrap_or_else(|_| "results".to_string());
    if !dir.is_empty() {
        let doc = Json::object([
            ("bench".to_string(), Json::string("shard")),
            (
                "scenario".to_string(),
                Json::string(
                    "e13 shard-network cell: 200 tx/s capacity, 3x offered, f=0.3, \
                     5 s window, 500 ms epochs",
                ),
            ),
            ("cores".to_string(), Json::number(cores as f64)),
            ("cells".to_string(), Json::Array(rows)),
        ]);
        let path = std::path::Path::new(&dir).join("BENCH_shard.json");
        match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, doc.to_string())) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}
