//! Engine hot-path benchmark: the refactored simulation substrate vs
//! a faithful reimplementation of the pre-refactor engine
//! (`cargo bench --bench engine`).
//!
//! The scenario is the regime the refactor targets: a 64-node
//! broadcast-heavy flood gossip with ~2 KiB payloads, where the old
//! engine deep-cloned the message once per scheduled delivery and
//! allocated a `String` per metric update. The legacy engine here is
//! deliberately *not* the current code with features toggled off — it
//! reproduces the seed's actual shapes (owned `M` per event,
//! `BTreeMap<String, _>` metrics keyed by `name.to_string()`,
//! full-sort percentile) on top of the same `Network`/`SimRng`, so
//! both sides process the identical event sequence.
//!
//! Besides the suite's usual `results/bench_sim.json`, this bench
//! writes `BENCH_sim.json` with the legacy/current medians and the
//! speedup — the repo's benchmark trajectory record.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use dlt_sim::engine::{Context, Payload, SimNode, Simulation};
use dlt_sim::latency::LatencyModel;
use dlt_sim::metrics::{CounterId, Metrics, SeriesId};
use dlt_sim::network::{Network, NodeId};
use dlt_sim::rng::SimRng;
use dlt_sim::time::SimTime;
use dlt_testkit::bench::BenchSuite;
use dlt_testkit::json::Json;

const NODES: usize = 64;
const ROOTS: u32 = 4;
const PAYLOAD_BYTES: usize = 2048;
const SEED: u64 = 64;

fn latency() -> LatencyModel {
    LatencyModel::LogNormal {
        median: SimTime::from_millis(50),
        sigma: 0.3,
    }
}

fn gossip(id: u32) -> Gossip {
    Gossip {
        id,
        data: vec![id as u8; PAYLOAD_BYTES],
    }
}

#[derive(Debug, Clone)]
struct Gossip {
    id: u32,
    data: Vec<u8>,
}

// --- The pre-refactor engine, reproduced ---------------------------------

/// Seed-style metrics: every update interns the name again.
#[derive(Default)]
struct LegacyMetrics {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<f64>>,
}

impl LegacyMetrics {
    fn inc(&mut self, name: &str) {
        *self.counters.entry(name.to_string()).or_insert(0) += 1;
    }

    fn record(&mut self, name: &str, value: f64) {
        self.series.entry(name.to_string()).or_default().push(value);
    }

    fn count(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Seed-style percentile: clone and fully re-sort the series on
    /// every query.
    fn percentile(&self, name: &str, q: f64) -> Option<f64> {
        let samples = self.series.get(name)?;
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

enum LegacyEvent {
    Deliver {
        to: NodeId,
        msg: Gossip, // owned: one deep clone per scheduled delivery
    },
}

struct LegacyScheduled {
    at: SimTime,
    seq: u64,
    event: LegacyEvent,
}

impl PartialEq for LegacyScheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for LegacyScheduled {}
impl PartialOrd for LegacyScheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LegacyScheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct LegacyCore {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<LegacyScheduled>,
    network: Network,
    rng: SimRng,
    metrics: LegacyMetrics,
    node_count: usize,
}

impl LegacyCore {
    fn schedule(&mut self, at: SimTime, event: LegacyEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(LegacyScheduled { at, seq, event });
    }

    fn send_from(&mut self, from: NodeId, to: NodeId, msg: &Gossip) {
        for delay in self.network.deliveries(from, to, &mut self.rng) {
            self.metrics.inc("net.messages");
            self.schedule(
                self.now.saturating_add(delay),
                LegacyEvent::Deliver {
                    to,
                    msg: msg.clone(),
                },
            );
        }
    }

    fn broadcast_from(&mut self, from: NodeId, msg: &Gossip) {
        for to in self.network.peers_of(from, self.node_count) {
            self.send_from(from, to, msg);
        }
    }
}

struct LegacyFlood {
    seen: Vec<bool>,
}

fn run_legacy() -> (u64, f64) {
    let mut core = LegacyCore {
        now: SimTime::ZERO,
        seq: 0,
        queue: BinaryHeap::new(),
        network: Network::new(latency()),
        rng: SimRng::new(SEED),
        metrics: LegacyMetrics::default(),
        node_count: NODES,
    };
    let mut nodes: Vec<LegacyFlood> = (0..NODES)
        .map(|_| LegacyFlood {
            seen: vec![false; ROOTS as usize],
        })
        .collect();
    for root in 0..ROOTS {
        core.schedule(
            SimTime::from_millis(u64::from(root)),
            LegacyEvent::Deliver {
                to: NodeId(root as usize),
                msg: gossip(root),
            },
        );
    }
    while let Some(scheduled) = core.queue.pop() {
        core.now = scheduled.at;
        let LegacyEvent::Deliver { to, msg } = scheduled.event;
        let node = &mut nodes[to.0];
        if !node.seen[msg.id as usize] {
            node.seen[msg.id as usize] = true;
            core.metrics.inc("gossip.relayed");
            core.metrics.record("gossip.bytes", msg.data.len() as f64);
            core.broadcast_from(to, &msg);
        }
    }
    let p99 = core.metrics.percentile("gossip.bytes", 0.99).unwrap_or(0.0);
    (core.metrics.count("net.messages"), p99)
}

// --- The same scenario on the refactored engine --------------------------

#[derive(Clone, Copy)]
struct FloodMetrics {
    relayed: CounterId,
    bytes: SeriesId,
}

struct Flood {
    seen: Vec<bool>,
    metrics: Option<FloodMetrics>,
}

impl SimNode<Gossip> for Flood {
    fn on_start(&mut self, ctx: &mut Context<'_, Gossip>) {
        self.metrics = Some(FloodMetrics {
            relayed: ctx.metrics().counter("gossip.relayed"),
            bytes: ctx.metrics().series("gossip.bytes"),
        });
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Gossip>, _from: NodeId, msg: Payload<Gossip>) {
        if !self.seen[msg.id as usize] {
            self.seen[msg.id as usize] = true;
            let m = self.metrics.expect("registered in on_start");
            ctx.metrics().inc(m.relayed);
            ctx.metrics().record(m.bytes, msg.data.len() as f64);
            ctx.broadcast(msg);
        }
    }
}

fn run_current() -> (u64, f64) {
    let mut sim: Simulation<Gossip, Flood> = Simulation::new(SEED, latency());
    for _ in 0..NODES {
        sim.add_node(Flood {
            seen: vec![false; ROOTS as usize],
            metrics: None,
        });
    }
    for root in 0..ROOTS {
        sim.deliver_at(
            SimTime::from_millis(u64::from(root)),
            NodeId(root as usize),
            NodeId(root as usize),
            gossip(root),
        );
    }
    sim.run_until_idle(SimTime::MAX);
    let p99 = sim
        .metrics()
        .percentile("gossip.bytes", 0.99)
        .unwrap_or(0.0);
    (sim.metrics().count("net.messages"), p99)
}

// --- Metric-primitive micro-benches --------------------------------------

fn bench_metrics(suite: &mut BenchSuite) {
    let mut legacy = LegacyMetrics::default();
    suite.bench("metrics_inc/string_keyed", move || {
        legacy.inc("net.messages");
        legacy.count("net.messages")
    });

    let mut metrics = Metrics::new();
    let id = metrics.counter("net.messages");
    suite.bench("metrics_inc/typed_handle", move || {
        metrics.inc(id);
        metrics.counter_value(id)
    });

    let samples: Vec<f64> = (0..10_000)
        .map(|i| ((i * 2_654_435_761_u64) % 10_007) as f64)
        .collect();
    let mut legacy = LegacyMetrics::default();
    for &s in &samples {
        legacy.record("lat", s);
    }
    suite.bench("percentile_10k/full_resort", move || {
        legacy.percentile("lat", 0.99)
    });

    let mut metrics = Metrics::new();
    let lat = metrics.series("lat");
    for &s in &samples {
        metrics.record(lat, s);
    }
    suite.bench("percentile_10k/histogram", move || {
        metrics.percentile("lat", 0.99)
    });
}

fn main() {
    // Sanity: both engines must process the identical event sequence.
    let legacy = run_legacy();
    let current = run_current();
    assert_eq!(
        legacy, current,
        "legacy and refactored engines diverged on the benchmark scenario"
    );
    eprintln!(
        "scenario: {NODES}-node flood, {ROOTS} roots x {PAYLOAD_BYTES} B -> {} deliveries",
        legacy.0
    );

    let mut suite = BenchSuite::new("sim");
    suite.bench_with_setup("broadcast64/legacy", || (), |()| run_legacy());
    suite.bench_with_setup("broadcast64/current", || (), |()| run_current());
    bench_metrics(&mut suite);
    let results = suite.finish();

    let median = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .expect("bench ran")
    };
    let legacy_ns = median("broadcast64/legacy");
    let current_ns = median("broadcast64/current");
    let speedup = legacy_ns / current_ns;
    eprintln!(
        "broadcast64 median: legacy {:.2} ms, current {:.2} ms -> {speedup:.2}x",
        legacy_ns / 1e6,
        current_ns / 1e6
    );

    let dir = std::env::var("DLT_BENCH_DIR").unwrap_or_else(|_| "results".to_string());
    if !dir.is_empty() {
        let doc = Json::object([
            ("bench".to_string(), Json::string("sim")),
            (
                "scenario".to_string(),
                Json::string(format!(
                    "{NODES}-node flood gossip, {ROOTS} roots, {PAYLOAD_BYTES} B payloads"
                )),
            ),
            ("deliveries".to_string(), Json::number(legacy.0 as f64)),
            ("legacy_median_ns".to_string(), Json::number(legacy_ns)),
            ("current_median_ns".to_string(), Json::number(current_ns)),
            ("speedup_median".to_string(), Json::number(speedup)),
        ]);
        let path = std::path::Path::new(&dir).join("BENCH_sim.json");
        match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, doc.to_string())) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}
