//! Dispatch-hash determinism regression tests over e18's six fault
//! scenarios (active only with `--features det-sanitizer`).
//!
//! PR 3 asserts e18 smoke byte-determinism at the JSON level; these
//! tests assert it one layer deeper — the engine's per-event dispatch
//! hash — so a nondeterminism bug is caught even when it cancels out
//! of the aggregated report. Each scenario is built and run twice from
//! the same seed via `dlt_bench::faults` (the exact code the e18
//! binary drives) and both runs must fold the identical
//! `(time, seq, node, msg)` dispatch sequence.

#![cfg(feature = "det-sanitizer")]

use dlt_bench::faults::{run_blockchain_scenario, run_dag_scenario, scenarios};
use dlt_sim::time::SimTime;
use dlt_testkit::det::assert_deterministic;

#[test]
fn blockchain_scenarios_dispatch_hash_is_deterministic() {
    // Shorter than the smoke run: the hash covers every dispatch, so a
    // divergence shows up within seconds of simulated time.
    let run = SimTime::from_secs(30);
    for (i, scenario) in scenarios().iter().enumerate() {
        assert_deterministic(i as u64, |_| {
            let sim = run_blockchain_scenario(i, scenario, run, |_| {});
            sim.dispatch_hash()
        });
    }
}

#[test]
fn dag_scenarios_dispatch_hash_is_deterministic() {
    let run = SimTime::from_secs(20);
    for (i, scenario) in scenarios().iter().enumerate() {
        assert_deterministic(i as u64, |_| {
            let sim = run_dag_scenario(i, scenario, 3, run, |_| {});
            sim.dispatch_hash()
        });
    }
}

#[test]
fn dispatch_hash_distinguishes_scenarios() {
    // Sanity check that the hash is actually sensitive: different
    // fault schedules over the same workload must not collide.
    let run = SimTime::from_secs(20);
    let hashes: Vec<u64> = scenarios()
        .iter()
        .enumerate()
        .map(|(i, s)| run_blockchain_scenario(i, s, run, |_| {}).dispatch_hash())
        .collect();
    for (i, a) in hashes.iter().enumerate() {
        for (j, b) in hashes.iter().enumerate().skip(i + 1) {
            assert_ne!(a, b, "scenario {i} and {j} produced identical hashes");
        }
    }
}

#[test]
fn msg_digester_changes_the_hash() {
    // With a payload digester installed the hash must also cover
    // message content, so it diverges from the digester-free hash.
    let run = SimTime::from_secs(20);
    let scenarios = scenarios();
    let plain = run_blockchain_scenario(0, &scenarios[0], run, |_| {}).dispatch_hash();
    let digested = run_blockchain_scenario(0, &scenarios[0], run, |sim| {
        sim.set_msg_digester(|msg| match msg {
            dlt_blockchain::node::NetMsg::Block(b) => b.header.height,
            dlt_blockchain::node::NetMsg::Tx(_) => 1,
        });
    })
    .dispatch_hash();
    assert_ne!(plain, digested);
}
