//! Dispatch-hash determinism regression tests over e18's six fault
//! scenarios (active only with `--features det-sanitizer`).
//!
//! PR 3 asserts e18 smoke byte-determinism at the JSON level; these
//! tests assert it one layer deeper — the engine's per-event dispatch
//! hash — so a nondeterminism bug is caught even when it cancels out
//! of the aggregated report. Each scenario is built and run twice from
//! the same seed via `dlt_bench::faults` (the exact code the e18
//! binary drives) and both runs must fold the identical
//! `(time, seq, node, msg)` dispatch sequence.

#![cfg(feature = "det-sanitizer")]

use dlt_bench::faults::{run_blockchain_scenario, run_dag_scenario, scenarios};
use dlt_bench::shardnet::{cell_params, run_cell};
use dlt_sim::time::SimTime;
use dlt_testkit::det::assert_deterministic;

#[test]
fn blockchain_scenarios_dispatch_hash_is_deterministic() {
    // Shorter than the smoke run: the hash covers every dispatch, so a
    // divergence shows up within seconds of simulated time.
    let run = SimTime::from_secs(30);
    for (i, scenario) in scenarios().iter().enumerate() {
        assert_deterministic(i as u64, |_| {
            let sim = run_blockchain_scenario(i, scenario, run, |_| {});
            sim.dispatch_hash()
        });
    }
}

#[test]
fn dag_scenarios_dispatch_hash_is_deterministic() {
    let run = SimTime::from_secs(20);
    for (i, scenario) in scenarios().iter().enumerate() {
        assert_deterministic(i as u64, |_| {
            let sim = run_dag_scenario(i, scenario, 3, run, |_| {});
            sim.dispatch_hash()
        });
    }
}

#[test]
fn dispatch_hash_distinguishes_scenarios() {
    // Sanity check that the hash is actually sensitive: different
    // fault schedules over the same workload must not collide.
    let run = SimTime::from_secs(20);
    let hashes: Vec<u64> = scenarios()
        .iter()
        .enumerate()
        .map(|(i, s)| run_blockchain_scenario(i, s, run, |_| {}).dispatch_hash())
        .collect();
    for (i, a) in hashes.iter().enumerate() {
        for (j, b) in hashes.iter().enumerate().skip(i + 1) {
            assert_ne!(a, b, "scenario {i} and {j} produced identical hashes");
        }
    }
}

#[test]
fn shard_combined_hash_is_deterministic_and_thread_invariant() {
    // The e13 shard executor folds live (non-zero) per-shard dispatch
    // hashes under this feature; the fold must be reproducible across
    // runs and invariant to the worker-thread count.
    let params = cell_params(4, 0.3, 2, true);
    assert_deterministic(params.seed, |_| run_cell(&params, 1).combined_hash);
    let serial = run_cell(&params, 1);
    assert!(
        serial.shard_hashes.iter().all(|&h| h != 0),
        "det-sanitizer builds must report live per-shard hashes: {:?}",
        serial.shard_hashes
    );
    for threads in [2, 4] {
        let parallel = run_cell(&params, threads);
        assert_eq!(serial.shard_hashes, parallel.shard_hashes);
        assert_eq!(serial.combined_hash, parallel.combined_hash);
    }
}

#[test]
fn shard_combined_hash_is_seed_sensitive() {
    // Different sweep cells must not collide: the combined hash covers
    // every dispatch in every shard, so a different per-cell seed (the
    // PR's seeding bugfix) has to surface in it.
    let a = run_cell(&cell_params(4, 0.3, 2, true), 1).combined_hash;
    let b = run_cell(&cell_params(4, 0.3, 3, true), 1).combined_hash;
    assert_ne!(a, b, "distinct f_index cells produced identical hashes");
}

#[test]
fn msg_digester_changes_the_hash() {
    // With a payload digester installed the hash must also cover
    // message content, so it diverges from the digester-free hash.
    let run = SimTime::from_secs(20);
    let scenarios = scenarios();
    let plain = run_blockchain_scenario(0, &scenarios[0], run, |_| {}).dispatch_hash();
    let digested = run_blockchain_scenario(0, &scenarios[0], run, |sim| {
        sim.set_msg_digester(|msg| match msg {
            dlt_blockchain::node::NetMsg::Block(b) => b.header.height,
            dlt_blockchain::node::NetMsg::Tx(_) => 1,
        });
    })
    .dispatch_hash();
    assert_ne!(plain, digested);
}
