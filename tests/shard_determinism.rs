//! Determinism guarantees of the parallel shard executor
//! (`dlt_sim::shard`, DESIGN.md §3d): a run on K worker threads must be
//! indistinguishable from the serial run — identical merged metrics,
//! identical combined dispatch hash, byte-identical e13 stdout — and
//! the cross-shard exchange order must be invariant to the order worker
//! threads happen to finish in.

use std::path::{Path, PathBuf};
use std::process::Command;

use dlt_bench::shardnet::{cell_params, run_cell, ShardNetParams};
use dlt_sim::rng::SimRng;
use dlt_sim::shard::{mix, sort_exchange, CrossMsg};
use dlt_sim::time::SimTime;

fn small_cell(shards: usize, f: f64) -> ShardNetParams {
    ShardNetParams {
        shards,
        capacity: 40.0,
        cross_fraction: f,
        offered_per_shard: 100.0,
        duration: 4.0,
        epoch_len: SimTime::from_millis(500),
        cross_latency: SimTime::from_millis(80),
        replicas: 2,
        seed: 0x5eed_ce11,
    }
}

#[test]
fn parallel_runs_match_serial_metrics_and_hash() {
    for (shards, f) in [(2, 0.1), (4, 0.3), (4, 1.0), (8, 0.5)] {
        let serial = run_cell(&small_cell(shards, f), 1);
        for threads in [2, 4, 16] {
            let parallel = run_cell(&small_cell(shards, f), threads);
            assert_eq!(
                serial.completed, parallel.completed,
                "completed txs diverged at K={shards} f={f} threads={threads}"
            );
            assert_eq!(
                serial.cross_messages, parallel.cross_messages,
                "exchange volume diverged at K={shards} f={f} threads={threads}"
            );
            assert_eq!(
                serial.undelivered, parallel.undelivered,
                "final-epoch drops diverged at K={shards} f={f} threads={threads}"
            );
            assert_eq!(
                serial.combined_hash, parallel.combined_hash,
                "combined dispatch hash diverged at K={shards} f={f} threads={threads}"
            );
            assert_eq!(
                serial.metrics.to_string(),
                parallel.metrics.to_string(),
                "merged metrics diverged at K={shards} f={f} threads={threads}"
            );
        }
    }
}

#[test]
fn e13_cell_params_reproduce_independently() {
    // The per-cell seed bugfix: a cell's outcome must not depend on
    // which sweep cells ran before it, so running the same cell twice
    // in isolation reproduces it exactly.
    let params = cell_params(4, 0.3, 2, true);
    let a = run_cell(&params, 1);
    let b = run_cell(&params, 2);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.combined_hash, b.combined_hash);
    assert_eq!(a.metrics.to_string(), b.metrics.to_string());
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ lives under the workspace root")
        .to_path_buf()
}

/// Runs e13 in smoke mode with the given thread count, returning
/// (stdout, JSON report).
fn run_e13(threads: usize, tag: &str) -> (String, String) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let json_out = std::env::temp_dir().join(format!(
        "dlt_shard_det_e13_{tag}_{}.json",
        std::process::id()
    ));
    let output = Command::new(cargo)
        .current_dir(workspace_root())
        .args([
            "run",
            "--quiet",
            "--offline",
            "-p",
            "dlt-bench",
            "--bin",
            "e13_sharding",
        ])
        .env("DLT_SMOKE", "1")
        .env("DLT_THREADS", threads.to_string())
        .env("DLT_JSON_OUT", &json_out)
        .output()
        .expect("spawn cargo run");
    assert!(
        output.status.success(),
        "e13 with DLT_THREADS={threads} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    let report = std::fs::read_to_string(&json_out).expect("e13 wrote a JSON report");
    std::fs::remove_file(&json_out).ok();
    (stdout, report)
}

#[test]
fn e13_stdout_is_byte_identical_across_thread_counts() {
    let (stdout_serial, report_serial) = run_e13(1, "t1");
    let (stdout_parallel, report_parallel) = run_e13(4, "t4");
    assert_eq!(
        stdout_serial, stdout_parallel,
        "e13 stdout depends on DLT_THREADS"
    );
    assert_eq!(
        report_serial, report_parallel,
        "e13 JSON report depends on DLT_THREADS"
    );
}

dlt_testkit::prop! {
    fn exchange_order_is_invariant_to_completion_order(g, cases = 128) {
        // Build a random barrier outbox: per-shard strictly-monotone
        // seqs, arbitrary (possibly colliding) timestamps.
        let shards = g.usize_in(2, 6);
        let mut canonical: Vec<CrossMsg<u64>> = Vec::new();
        for src in 0..shards {
            let n = g.usize_in(0, 8);
            let mut seq = 0u64;
            for _ in 0..n {
                seq += 1 + g.u64_below(3);
                canonical.push(CrossMsg {
                    sent_at: SimTime::from_millis(g.u64_below(5)),
                    seq,
                    src,
                    dst: g.usize_in(0, shards),
                    payload: g.any_u64(),
                });
            }
        }

        // Serial path: shards emit in index order. Parallel path: the
        // coordinator concatenates per-thread outboxes in whatever
        // order threads finish — model that as a random permutation of
        // per-shard chunks, then of message interleavings.
        let mut serial_view = canonical.clone();
        sort_exchange(&mut serial_view);

        let mut scrambled = canonical.clone();
        let mut rng = SimRng::new(g.any_u64());
        rng.shuffle(&mut scrambled);
        sort_exchange(&mut scrambled);

        assert_eq!(
            serial_view, scrambled,
            "exchange order depends on outbox arrival order"
        );
        // The (sent_at, seq, src) key is total: no two adjacent sorted
        // messages compare equal on it.
        for pair in serial_view.windows(2) {
            let ka = (pair[0].sent_at, pair[0].seq, pair[0].src);
            let kb = (pair[1].sent_at, pair[1].seq, pair[1].src);
            assert!(ka < kb, "exchange key collision: {ka:?} vs {kb:?}");
        }
    }
}

dlt_testkit::prop! {
    fn random_small_cells_agree_serial_vs_parallel(g, cases = 6) {
        let shards = g.usize_in(2, 6);
        let params = ShardNetParams {
            shards,
            capacity: g.f64_in(20.0, 60.0),
            cross_fraction: g.f64_in(0.0, 1.0),
            offered_per_shard: g.f64_in(30.0, 90.0),
            duration: 2.0,
            epoch_len: SimTime::from_millis(400),
            cross_latency: SimTime::from_millis(60),
            replicas: 1,
            seed: g.any_u64(),
        };
        let threads = g.usize_in(2, shards + 1);
        let serial = run_cell(&params, 1);
        let parallel = run_cell(&params, threads);
        assert_eq!(serial.completed, parallel.completed);
        assert_eq!(serial.combined_hash, parallel.combined_hash);
        assert_eq!(serial.metrics.to_string(), parallel.metrics.to_string());
    }
}

#[test]
fn combined_hash_folds_in_shard_index_order() {
    // The combined hash is defined as mix(mix(0, K), h_0, …, h_{K-1});
    // recompute it from the reported per-shard hashes to pin the
    // definition (holds with or without det-sanitizer — the per-shard
    // hashes are simply all zero without it).
    let out = run_cell(&small_cell(3, 0.4), 2);
    assert_eq!(out.shard_hashes.len(), 3);
    let mut expect = mix(0, 3);
    for &h in &out.shard_hashes {
        expect = mix(expect, h);
    }
    assert_eq!(out.combined_hash, expect);
}
