//! Integration: pruning and fast sync keep working ledgers (paper §V).
//!
//! Pruning must never break validation of *new* activity: a pruned
//! Bitcoin node still applies blocks, a delta-pruned Ethereum node
//! still executes transactions and reorgs within its retained window,
//! and a fast-synced node agrees with the archival node's state.

use dlt_blockchain::account::AccountHolder;
use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
use dlt_blockchain::ethereum::{EthereumChain, EthereumParams};
use dlt_blockchain::prune::{bitcoin_archival_size, bitcoin_pruned_size};
use dlt_blockchain::utxo::Wallet;
use dlt_crypto::keys::Address;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::{Lattice, LatticeParams};
use dlt_dag::prune::{ledger_size, NodeRole};

#[test]
fn bitcoin_pruned_node_keeps_validating() {
    let mut wallet = Wallet::new(1);
    let allocations: Vec<(Address, u64)> =
        (0..30).map(|_| (wallet.new_address(), 10_000)).collect();
    let mut chain = BitcoinChain::new(BitcoinParams::default(), &allocations);
    for i in 1..=20u64 {
        if let Some(tx) = wallet.build_transfer(chain.ledger(), Address::from_label("s"), 10, 1) {
            chain.submit_tx(tx);
        }
        chain.mine_block(Address::from_label("m"), i * 600_000_000);
    }
    let archival = bitcoin_archival_size(&chain);
    let pruned = bitcoin_pruned_size(&chain, 6);
    assert!(pruned.total() < archival.total() / 2);
    // The UTXO set — all a pruned node needs for validation — is
    // complete: a fresh transfer still validates and mines.
    let tx = wallet
        .build_transfer(chain.ledger(), Address::from_label("t"), 10, 1)
        .expect("funds visible");
    assert!(chain.submit_tx(tx));
    chain.mine_block(Address::from_label("m"), 21 * 600_000_000);
    assert_eq!(chain.ledger().balance(&Address::from_label("t")), 10);
}

#[test]
fn ethereum_prune_then_continue_then_reorg_within_window() {
    let mut alice = AccountHolder::from_seed([2u8; 32], 9);
    let mut chain = EthereumChain::new(
        EthereumParams::default(),
        &[(alice.address(), u64::MAX / 4)],
    );
    for i in 0..40u64 {
        chain.submit_tx(alice.transfer(Address::from_label("bob"), 10, 1));
        chain.produce_block(Address::from_label("v"), i * 15_000_000);
    }
    let collected = chain.prune_state_deltas(8);
    assert!(collected > 0);

    // New blocks still execute after pruning.
    chain.submit_tx(alice.transfer(Address::from_label("bob"), 10, 1));
    chain.produce_block(Address::from_label("v"), 41 * 15_000_000);
    assert_eq!(chain.balance(&Address::from_label("bob")), 410);
}

#[test]
fn fast_synced_node_agrees_with_archival_state() {
    let mut alice = AccountHolder::from_seed([3u8; 32], 9);
    let bob = Address::from_label("bob");
    let mut chain = EthereumChain::new(
        EthereumParams::default(),
        &[(alice.address(), u64::MAX / 4)],
    );
    for i in 0..50u64 {
        chain.submit_tx(alice.transfer(bob, 7, 1));
        chain.produce_block(Address::from_label("v"), i * 15_000_000);
    }
    let (synced, bytes) = chain.fast_sync(10).expect("sync");
    // State at the pivot equals the archival node's state at the pivot.
    let pivot_id = chain.chain().active_at(synced.pivot_height).unwrap();
    let pivot_block = chain.chain().block(&pivot_id).unwrap();
    assert_eq!(pivot_block.header.state_root, synced.pivot_root);
    assert_eq!(synced.account(&bob).balance, 7 * synced.pivot_height);
    // And the download is smaller than full history + full state store.
    assert!(bytes < chain.chain().total_bytes() + chain.state().trie().total_bytes());
}

#[test]
fn nano_current_node_data_suffices_for_new_blocks() {
    let params = LatticeParams {
        work_difficulty_bits: 2,
        verify_signatures: true,
        verify_work: true,
    };
    let mut genesis = NanoAccount::from_seed([4u8; 32], 9, 2);
    let mut lattice = Lattice::new(params, genesis.genesis_block(1_000_000));
    let mut bob = NanoAccount::from_seed([5u8; 32], 9, 2);
    let send = genesis.send(bob.address(), 1_000).unwrap();
    let hash = lattice.process(send).unwrap();
    lattice.process(bob.receive(hash, 1_000).unwrap()).unwrap();
    for _ in 0..10 {
        let send = genesis.send(bob.address(), 10).unwrap();
        let hash = lattice.process(send).unwrap();
        lattice.process(bob.receive(hash, 10).unwrap()).unwrap();
    }
    // Validation of a new block needs: the account head (previous
    // check), the balance (send arithmetic) and the pending map — all
    // part of the *current* role's data. Historical blocks are not
    // consulted by `process`, which is why §V-B pruning is sound.
    let current = ledger_size(&lattice, NodeRole::Current);
    let historical = ledger_size(&lattice, NodeRole::Historical);
    assert!(current < historical / 3);
    let send = genesis.send(bob.address(), 10).unwrap();
    assert!(lattice.process(send).is_ok());
}
