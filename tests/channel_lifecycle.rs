//! Integration: a payment channel anchored to the Bitcoin-like chain
//! (paper §VI-A).
//!
//! The full Lightning-shaped lifecycle: fund the channel with an
//! on-chain transaction, stream off-chain updates, settle on-chain —
//! and verify value conservation end to end across both layers.

use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
use dlt_blockchain::utxo::Wallet;
use dlt_crypto::keys::Address;
use dlt_scaling::channels::{ChannelNetwork, ChannelPair};

#[test]
fn channel_funded_and_settled_on_chain() {
    // On-chain: Alice holds 1000.
    let mut alice_wallet = Wallet::new(1);
    let alice_funding = alice_wallet.new_address();
    let mut chain = BitcoinChain::new(BitcoinParams::default(), &[(alice_funding, 1_000)]);
    let miner = Address::from_label("miner");

    // Open: Alice locks 600 into a channel escrow address on chain.
    let escrow = Address::from_label("channel-escrow-2of2");
    let funding_tx = alice_wallet
        .build_transfer(chain.ledger(), escrow, 600, 1)
        .expect("funded");
    chain.submit_tx(funding_tx);
    chain.mine_block(miner, 600_000_000);
    assert_eq!(chain.ledger().balance(&escrow), 600);

    // Off-chain: the channel mirrors the escrow as its capacity.
    let mut network = ChannelNetwork::new();
    let mut pair = ChannelPair::open(&mut network, 77, 600, 0);
    for _ in 0..200 {
        let update = pair.pay_a_to_b(2).expect("capacity");
        network.apply_update(&update).expect("valid");
    }
    let settlement = network.close_cooperative(pair.id).expect("open");
    assert_eq!(settlement.payout_a.1, 200);
    assert_eq!(settlement.payout_b.1, 400);
    assert_eq!(network.total_updates, 200);

    // Close: the escrow pays the settled balances back on chain.
    // (The escrow's key is the 2-of-2; modelled by a wallet that owns
    // it in this test.)
    let mut escrow_wallet = Wallet::new(2);
    let escrow_addr = escrow_wallet.new_address();
    // Re-anchor: in the simulation the escrow was a label; fund a real
    // escrow-controlled chain to demonstrate payout mechanics.
    let mut chain2 = BitcoinChain::new(BitcoinParams::default(), &[(escrow_addr, 600)]);
    let alice_payout = Address::from_label("alice-payout");
    let shop_payout = Address::from_label("shop-payout");
    let tx1 = escrow_wallet
        .build_transfer(chain2.ledger(), alice_payout, settlement.payout_a.1, 0)
        .expect("escrow funded");
    chain2.submit_tx(tx1);
    chain2.mine_block(miner, 600_000_000);
    let tx2 = escrow_wallet
        .build_transfer(chain2.ledger(), shop_payout, settlement.payout_b.1, 0)
        .expect("escrow change covers it");
    chain2.submit_tx(tx2);
    chain2.mine_block(miner, 1_200_000_000);

    assert_eq!(chain2.ledger().balance(&alice_payout), 200);
    assert_eq!(chain2.ledger().balance(&shop_payout), 400);
    // Conservation across layers: escrow in == payouts out.
    assert_eq!(
        settlement.payout_a.1 + settlement.payout_b.1,
        600,
        "channel conserves the locked capacity"
    );
}

#[test]
fn forced_close_with_challenge_across_layers() {
    let mut network = ChannelNetwork::new();
    let mut pair = ChannelPair::open(&mut network, 99, 500, 500);

    // Traffic in both directions.
    for _ in 0..10 {
        let update = pair.pay_a_to_b(30).expect("capacity");
        network.apply_update(&update).expect("valid");
    }
    let mid = pair.pay_b_to_a(100).expect("capacity");
    network.apply_update(&mid).expect("valid");
    let final_state = pair.pay_a_to_b(50).expect("capacity");
    network.apply_update(&final_state).expect("valid");

    // B forces a close with the *mid* state (stale for B's benefit:
    // compare balances).
    network
        .close_forced(pair.id, pair.party_b(), &mid, 10_000)
        .expect("valid post");
    // A challenges with the newest co-signed state inside the window.
    let settlement = network
        .challenge(pair.id, &final_state, 5_000)
        .expect("in window");
    // Cheater (B) forfeits everything.
    assert_eq!(settlement.payout_b.1, 0);
    assert_eq!(settlement.payout_a.1, 1_000);
    assert_eq!(
        settlement.payout_a.1 + settlement.payout_b.1,
        1_000,
        "capacity conserved even under punishment"
    );
}
