//! Integration: the §IV-A double-spend race on a live miner network.
//!
//! An attacker controlling a fraction of the hash power mines a secret
//! branch while the honest network confirms a payment. With a minority
//! share and a 6-block head start, the attack overwhelmingly fails;
//! with a majority share it overwhelmingly succeeds — the whole point
//! of waiting for confirmations.

use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_crypto::keys::Address;
use dlt_sim::engine::Simulation;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

type Net = Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>>;

fn config(hashrate: f64) -> MinerConfig<UtxoTx> {
    MinerConfig {
        hashrate,
        mine: true,
        subsidy: 0,
        block_capacity: 1_000_000,
        retarget: RetargetParams {
            target_interval_micros: 1_000_000,
            window: 1_000_000, // static difficulty
            max_step: 4,
        },
        miner_address: Address::ZERO,
        coinbase: None,
        mempool_capacity: 16,
    }
}

/// Runs one race: the attacker (node N-1) is partitioned off, both
/// sides mine for `secret_secs`, the partition heals, and we check
/// whether the attacker's branch displaced the honest chain.
fn attacker_wins(seed: u64, attacker_share: f64, secret_secs: u64) -> bool {
    let honest_nodes = 3usize;
    let total_rate = 1.0; // one block per second network-wide
    let mut sim: Net = Simulation::new(seed, LatencyModel::Fixed(SimTime::from_millis(20)));
    for _ in 0..honest_nodes {
        sim.add_node(MinerNode::new(
            Block::empty_genesis(),
            config(total_rate * (1.0 - attacker_share) / honest_nodes as f64),
        ));
    }
    let attacker = sim.add_node(MinerNode::new(
        Block::empty_genesis(),
        config(total_rate * attacker_share),
    ));

    // The attacker mines privately from the start.
    let everyone: Vec<NodeId> = (0..honest_nodes).map(NodeId).collect();
    let honest_ids: Vec<NodeId> = everyone.clone();
    sim.network_mut()
        .partition(honest_nodes + 1, &[&honest_ids, &[attacker]]);
    sim.run_until(SimTime::from_secs(secret_secs));

    // Snapshot the honest tip (the "paid" chain), then heal: the
    // attacker's branch floods the network. To let the branches merge,
    // each side re-announces its tip; we emulate by healing and letting
    // mining continue briefly (miners broadcast new blocks that carry
    // their branch via orphan-pool requests... here: direct flood of
    // the next mined block reveals the longer branch).
    let honest_tip_before = sim.node(NodeId(0)).chain().tip();
    let honest_height = sim.node(NodeId(0)).chain().tip_height();
    let attacker_height = sim.node(attacker).chain().tip_height();
    sim.network_mut().heal();

    // Replay the attacker's full chain to the honest nodes (block
    // release — what a real attacker broadcasts).
    let branch: Vec<_> = sim
        .node(attacker)
        .chain()
        .iter_active()
        .cloned()
        .collect::<Vec<_>>();
    for block in branch.into_iter().skip(1) {
        for honest in 0..honest_nodes {
            sim.deliver_at(
                sim.now(),
                attacker,
                NodeId(honest),
                NetMsg::Block(block.clone()),
            );
        }
    }
    sim.run_until_idle(sim.now() + SimTime::from_secs(30));

    let honest_tip_after = sim.node(NodeId(0)).chain().tip();

    honest_tip_after != honest_tip_before && attacker_height > honest_height
}

#[test]
fn minority_attacker_rarely_wins() {
    let wins = (0..12).filter(|i| attacker_wins(100 + i, 0.2, 60)).count();
    assert!(
        wins <= 2,
        "a 20% attacker displaced a 60s-confirmed chain {wins}/12 times"
    );
}

#[test]
fn majority_attacker_usually_wins() {
    let wins = (0..12).filter(|i| attacker_wins(200 + i, 0.75, 60)).count();
    assert!(
        wins >= 9,
        "a 75% attacker only displaced the chain {wins}/12 times"
    );
}

#[test]
fn longer_wait_lowers_minority_success() {
    // Same attacker share; the honest chain's head start grows with the
    // wait, so successes must not increase.
    let short_wins = (0..10).filter(|i| attacker_wins(300 + i, 0.35, 15)).count();
    let long_wins = (0..10)
        .filter(|i| attacker_wins(400 + i, 0.35, 120))
        .count();
    assert!(
        long_wins <= short_wins,
        "longer confirmation wait increased attack success ({short_wins} -> {long_wins})"
    );
}
