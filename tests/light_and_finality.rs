//! Integration: the §V node-role spectrum end to end — an archival
//! chain, an SPV light client following it, and the PoS finality layer
//! giving the light client a reorg-proof anchor.

use dlt_blockchain::account::AccountHolder;
use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
use dlt_blockchain::block::LedgerTx;
use dlt_blockchain::ethereum::EthereumParams;
use dlt_blockchain::pos_chain::{PosChain, PosParams};
use dlt_blockchain::spv::SpvClient;
use dlt_crypto::keys::Address;
use dlt_crypto::merkle::MerkleTree;
use dlt_crypto::Digest;
use dlt_dag::prune::{ledger_size, NodeRole};

#[test]
fn spv_client_tracks_archival_node_and_verifies_payments() {
    let mut wallet = dlt_blockchain::utxo::Wallet::new(1);
    let allocations: Vec<(Address, u64)> = (0..10).map(|_| (wallet.new_address(), 5_000)).collect();
    let mut chain = BitcoinChain::new(BitcoinParams::default(), &allocations);
    let genesis_header = chain
        .chain()
        .header(&chain.chain().genesis())
        .unwrap()
        .clone();
    let mut spv = SpvClient::new(genesis_header, false);

    // Ten blocks with a payment each; the light client follows headers.
    let mut paid_tx: Option<(u64, Digest)> = None;
    for height in 1..=10u64 {
        if let Some(tx) = wallet.build_transfer(chain.ledger(), Address::from_label("shop"), 100, 1)
        {
            if height == 4 {
                paid_tx = Some((height, tx.id()));
            }
            chain.submit_tx(tx);
        }
        chain.mine_block(Address::from_label("miner"), height * 600_000_000);
        let tip = chain.chain().tip();
        spv.accept_header(chain.chain().header(&tip).unwrap().clone())
            .expect("headers link");
    }
    assert_eq!(spv.tip_height(), 10);

    // The archival node serves a Merkle proof for the block-4 payment;
    // the light client verifies inclusion + confirmation count without
    // ever holding a block body.
    let (height, tx_id) = paid_tx.expect("payment in block 4");
    let block_id = chain.chain().active_at(height).unwrap();
    let block = chain.chain().block(&block_id).unwrap();
    let leaves: Vec<Digest> = block.txs.iter().map(LedgerTx::id).collect();
    let index = leaves.iter().position(|l| *l == tx_id).unwrap();
    let proof = MerkleTree::from_leaves(leaves).prove(index).unwrap();
    let confirmations = spv.verify_inclusion(height, &tx_id, &proof).unwrap();
    assert_eq!(confirmations, 7); // blocks 4..=10

    // The three storage classes of §V, in one picture: archival ≫
    // light. (The DAG side's current/light roles are measured in e08.)
    let archival_bytes = chain.chain().total_bytes() + chain.ledger().size_bytes();
    assert!(
        spv.storage_bytes() * 10 < archival_bytes,
        "light {} vs archival {}",
        spv.storage_bytes(),
        archival_bytes
    );
}

#[test]
fn pos_finality_gives_light_clients_irreversible_anchors() {
    // A PoS chain with epoch length 4 finalizes height 4 once height 8
    // is justified; an application polling `finalized_height` never
    // needs §IV-A's probabilistic depth rule below that line.
    let mut alice = AccountHolder::from_seed([7u8; 32], 8);
    let validators: Vec<(Address, u64)> = (0..3)
        .map(|i| (Address::from_label(&format!("v{i}")), 100))
        .collect();
    let mut chain = PosChain::new(
        EthereumParams::default(),
        PosParams {
            slot_micros: 4_000_000,
            epoch_length: 4,
        },
        &[(alice.address(), 1_000_000)],
        &validators,
    );
    let mut paid_at = 0u64;
    for slot in 1..=12u64 {
        if slot == 2 {
            chain.submit_tx(alice.transfer(Address::from_label("shop"), 100, 1));
            paid_at = slot;
        }
        chain.advance_slot(slot).unwrap();
    }
    assert!(chain.finalized_height() >= 8);
    assert!(paid_at < chain.finalized_height());
    // The payment's block is below the finality line: irreversible by
    // construction, not merely improbable to revert.
    assert!(chain
        .chain()
        .chain()
        .is_active(&chain.block_at(paid_at).unwrap()));
    assert_eq!(chain.chain().balance(&Address::from_label("shop")), 100);
}

#[test]
fn node_role_spectrum_is_ordered() {
    // light < current < historical on the DAG side, mirroring
    // SPV < pruned < archival on the blockchain side.
    let params = dlt_dag::lattice::LatticeParams {
        work_difficulty_bits: 2,
        verify_signatures: true,
        verify_work: true,
    };
    let mut genesis = dlt_dag::account::NanoAccount::from_seed([9u8; 32], 9, 2);
    let mut lattice = dlt_dag::lattice::Lattice::new(params, genesis.genesis_block(1_000_000));
    let mut bob = dlt_dag::account::NanoAccount::from_seed([10u8; 32], 9, 2);
    for amount in [1_000u64, 10, 10, 10, 10] {
        let send = genesis.send(bob.address(), amount).unwrap();
        let hash = lattice.process(send).unwrap();
        lattice.process(bob.receive(hash, amount).unwrap()).unwrap();
    }
    let light = ledger_size(&lattice, NodeRole::Light);
    let current = ledger_size(&lattice, NodeRole::Current);
    let historical = ledger_size(&lattice, NodeRole::Historical);
    assert!(light < current && current < historical);
    assert_eq!(light, 0);
}
