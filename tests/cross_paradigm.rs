//! Integration: the unified-workload comparison invariants.
//!
//! Whatever the paradigm, the same workload must conserve value, never
//! confirm a transfer twice, and report internally consistent stats.

use dlt_blockchain::bitcoin::BitcoinParams;
use dlt_blockchain::ethereum::EthereumParams;
use dlt_core::ledger::{
    run_workload, BitcoinAdapter, DistributedLedger, EthereumAdapter, NanoAdapter, TxStatus,
    WorkloadConfig,
};
use dlt_dag::lattice::LatticeParams;
use dlt_sim::time::SimTime;

fn config() -> WorkloadConfig {
    WorkloadConfig {
        offered_tps: 2.0,
        duration: SimTime::from_secs(60),
        drain: SimTime::from_secs(90),
        amount: 3,
        seed: 11,
    }
}

fn bitcoin() -> BitcoinAdapter {
    BitcoinAdapter::new(
        BitcoinParams {
            confirmation_depth: 3,
            ..BitcoinParams::default()
        },
        SimTime::from_secs(10),
        5,
        50,
        10_000,
        3,
    )
}

fn ethereum() -> EthereumAdapter {
    EthereumAdapter::new(
        EthereumParams {
            confirmation_depth: 3,
            ..EthereumParams::default()
        },
        SimTime::from_secs(1),
        5,
        50_000_000,
        9,
        3,
    )
}

fn nano() -> NanoAdapter {
    NanoAdapter::new(
        LatticeParams {
            work_difficulty_bits: 2,
            verify_signatures: true,
            verify_work: true,
        },
        5,
        50_000_000,
        9,
        SimTime::from_millis(150),
        SimTime::from_millis(250),
        3,
    )
}

#[test]
fn reports_are_internally_consistent_everywhere() {
    let cfg = config();
    let mut bitcoin = bitcoin();
    let mut ethereum = ethereum();
    let mut nano = nano();
    let ledgers: Vec<&mut dyn DistributedLedger> = vec![&mut bitcoin, &mut ethereum, &mut nano];
    for ledger in ledgers {
        let name = ledger.name();
        let report = run_workload(ledger, &cfg);
        assert!(report.submitted <= report.offered, "{name}: {report:?}");
        assert!(report.confirmed <= report.submitted, "{name}: {report:?}");
        assert!(report.confirmed > 0, "{name}: nothing confirmed");
        assert!(report.ledger_bytes > 0, "{name}");
        assert!(report.bytes_per_tx > 0.0, "{name}");
        assert!(report.blocks > 0, "{name}");
    }
}

#[test]
fn bitcoin_value_conservation_under_workload() {
    let cfg = config();
    let mut ledger = bitcoin();
    run_workload(&mut ledger, &cfg);
    // Supply = genesis allocations + mined subsidies (fees recirculate).
    let genesis_funds = 5 * 50 * 10_000u64;
    let blocks_mined = ledger.chain().chain().tip_height();
    let expected = genesis_funds + blocks_mined * ledger.chain().params().subsidy;
    assert_eq!(ledger.chain().ledger().total_value(), expected);
}

#[test]
fn nano_supply_conserved_and_settles_fully() {
    let cfg = config();
    let mut ledger = nano();
    let report = run_workload(&mut ledger, &cfg);
    assert_eq!(
        ledger.lattice().circulating_total(),
        ledger.lattice().total_supply()
    );
    // After the drain every accepted transfer has settled.
    assert_eq!(report.backlog, 0);
    assert_eq!(ledger.lattice().pending_count(), 0);
}

#[test]
fn tickets_never_regress_from_confirmed() {
    let mut ledger = ethereum();
    let ticket = ledger.submit_transfer(0, 1, 5).expect("funded");
    let mut reached_confirmed = false;
    for _ in 0..40 {
        ledger.advance(SimTime::from_secs(1));
        let status = ledger.status(&ticket);
        if reached_confirmed {
            assert_eq!(status, TxStatus::Confirmed, "confirmation is sticky");
        }
        if status == TxStatus::Confirmed {
            reached_confirmed = true;
        }
    }
    assert!(reached_confirmed);
}

#[test]
fn ethereum_balances_match_transfer_ledger() {
    // Drive a known sequence and check the state agrees exactly.
    let mut ledger = ethereum();
    let tickets: Vec<_> = (0..5)
        .filter_map(|i| ledger.submit_transfer(0, 1 + (i % 2), 10))
        .collect();
    assert_eq!(tickets.len(), 5);
    for _ in 0..10 {
        ledger.advance(SimTime::from_secs(1));
    }
    for ticket in &tickets {
        assert!(matches!(
            ledger.status(ticket),
            TxStatus::Confirmed | TxStatus::Included { .. }
        ));
    }
    let stats = ledger.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.pending, 0);
}
