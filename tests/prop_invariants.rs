//! Property-based tests over the core data structures and invariants,
//! on the in-repo `dlt_testkit::prop!` harness.

use std::collections::HashMap;

use dlt_blockchain::difficulty::{retarget, RetargetParams};
use dlt_crypto::codec::{decode_exact, Decode, Encode};
use dlt_crypto::merkle::MerkleTree;
use dlt_crypto::sha256::{sha256, Sha256};
use dlt_crypto::trie::TrieDb;
use dlt_crypto::Digest;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::{Lattice, LatticeParams};
use dlt_dag::voting::Election;
use dlt_testkit::prop;

prop! {
    /// Streaming SHA-256 equals one-shot hashing for any chunking.
    fn sha256_streaming_equals_oneshot(g, cases = 64) {
        let data = g.bytes_in(0, 2048);
        let splits = g.vec_in(0, 8, |g| g.usize_in(0, 2048));
        let oneshot = sha256(&data);
        let mut hasher = Sha256::new();
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut start = 0;
        for cut in cuts {
            hasher.update(&data[start..cut]);
            start = cut;
        }
        hasher.update(&data[start..]);
        assert_eq!(hasher.finalize(), oneshot);
    }
}

prop! {
    /// Codec round trips for random primitive compositions.
    fn codec_round_trips(g, cases = 64) {
        let a = g.any_u64();
        let b = g.any_bool();
        let s = g.ascii_string(0, 64);
        let v = g.vec_in(0, 32, |g| g.choice() as u32);
        let o = g.option(|g| g.any_u64());
        fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
            let bytes = value.encode_to_vec();
            assert_eq!(bytes.len(), value.encoded_len());
            let back: T = decode_exact(&bytes).unwrap();
            assert_eq!(back, value);
        }
        rt(a);
        rt(b);
        rt(s);
        rt(v);
        rt(o);
    }
}

prop! {
    /// Merkle proofs verify for every leaf, and fail for any other leaf.
    fn merkle_proofs_sound(g, cases = 64) {
        let seed_leaves = g.vec_in(1, 40, |g| g.any_u64());
        let probe = g.any_usize();
        let leaves: Vec<Digest> = seed_leaves.iter().map(|s| sha256(&s.to_be_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let index = probe % leaves.len();
        let proof = tree.prove(index).unwrap();
        assert!(proof.verify(&tree.root(), &leaves[index]));
        // Wrong leaf must fail (when distinct).
        let other = (index + 1) % leaves.len();
        if leaves[other] != leaves[index] {
            assert!(!proof.verify(&tree.root(), &leaves[other]));
        }
    }
}

prop! {
    /// The trie agrees with a HashMap model under arbitrary
    /// insert/overwrite/remove interleavings, and its root is
    /// history-independent (same content ⇒ same root).
    fn trie_matches_model(g, cases = 64) {
        let ops = g.vec_in(1, 60, |g| (g.any_u8(), g.u8_in(0, 16), g.bytes_in(0, 6)));
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (op, key_byte, value) in &ops {
            let key = vec![*key_byte];
            if *op % 4 == 0 {
                root = db.remove(root, &key);
                model.remove(&key);
            } else {
                root = db.insert(root, &key, value.clone());
                model.insert(key, value.clone());
            }
        }
        for (key, value) in &model {
            assert_eq!(db.get(root, key), Some(value.as_slice()));
        }
        assert_eq!(db.iter(root).len(), model.len());

        // Rebuild from the final content in sorted order: same root.
        let mut db2 = TrieDb::new();
        let mut root2 = TrieDb::EMPTY_ROOT;
        let mut items: Vec<_> = model.iter().collect();
        items.sort();
        for (key, value) in items {
            root2 = db2.insert(root2, key, value.clone());
        }
        assert_eq!(root2, root);
    }
}

prop! {
    /// Difficulty retargeting is clamped and positive.
    fn retarget_bounded(g, cases = 64) {
        let old = g.u64_in(1, u64::MAX / 8);
        let span = g.u64_in(1, u64::MAX / 8);
        let params = RetargetParams {
            target_interval_micros: 600_000_000,
            window: 100,
            max_step: 4,
        };
        let new = retarget(&params, old, span);
        assert!(new >= 1);
        assert!(new <= old.saturating_mul(4).max(1));
        assert!(new >= old / 4 || old < 4);
    }
}

prop! {
    /// Elections: the winner's tally is maximal, and total cast weight
    /// never exceeds the sum of voted weights.
    fn election_winner_is_maximal(g, cases = 64) {
        let votes = g.vec_in(1, 50, |g| (g.u8_in(0, 20), g.u64_in(1, 1000), g.u8_in(0, 4)));
        let mut election = Election::new();
        for (rep, weight, candidate) in &votes {
            election.vote(
                dlt_crypto::keys::Address::from_label(&format!("r{rep}")),
                *weight,
                sha256(&[*candidate]),
            );
        }
        let (_winner, winner_weight) = election.leader().unwrap();
        assert!(winner_weight > 0);
        let total: u64 = votes.iter().map(|(_, w, _)| *w).sum();
        assert!(election.total_cast() <= total);
    }
}

prop! {
    /// The lattice conserves total supply under any valid interleaving
    /// of sends and receives, and rollback restores conservation.
    fn lattice_conserves_supply(g, cases = 12) {
        let transfers = g.vec_in(1, 12, |g| (g.usize_in(0, 4), g.usize_in(0, 4), g.u64_in(1, 50)));
        let rollback_choice = g.any_usize();
        let params = LatticeParams {
            work_difficulty_bits: 1,
            verify_signatures: true,
            verify_work: true,
        };
        let supply = 1_000_000u64;
        let mut genesis = NanoAccount::from_seed([1u8; 32], 8, 1);
        let mut lattice = Lattice::new(params, genesis.genesis_block(supply));
        let mut accounts: Vec<NanoAccount> = (0..4)
            .map(|i| NanoAccount::from_seed([10 + i as u8; 32], 8, 1))
            .collect();
        // Fund everyone.
        let mut funded = Vec::new();
        for account in accounts.iter_mut() {
            let send = genesis.send(account.address(), 1_000).unwrap();
            let hash = lattice.process(send).unwrap();
            lattice.process(account.receive(hash, 1_000).unwrap()).unwrap();
        }
        // Random (valid) transfers; skip self-sends and over-spends.
        let mut settled_sends = Vec::new();
        for (from, to, amount) in transfers {
            if from == to {
                continue;
            }
            let to_address = accounts[to].address();
            let Ok(send) = accounts[from].send(to_address, amount) else {
                continue;
            };
            let hash = lattice.process(send).unwrap();
            let receive = accounts[to].receive(hash, amount).unwrap();
            lattice.process(receive).unwrap();
            settled_sends.push(hash);
            funded.push(hash);
            assert_eq!(lattice.circulating_total(), supply);
        }
        // Roll one settled transfer back (cascades through the receive).
        if !settled_sends.is_empty() {
            let victim = settled_sends[rollback_choice % settled_sends.len()];
            if lattice.rollback(&victim).is_ok() {
                assert_eq!(lattice.circulating_total(), supply);
            }
        }
    }
}
