//! Property-based tests over the core data structures and invariants.

use std::collections::HashMap;

use dlt_blockchain::difficulty::{retarget, RetargetParams};
use dlt_crypto::codec::{decode_exact, Decode, Encode};
use dlt_crypto::merkle::MerkleTree;
use dlt_crypto::sha256::{sha256, Sha256};
use dlt_crypto::trie::TrieDb;
use dlt_crypto::Digest;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::{Lattice, LatticeParams};
use dlt_dag::voting::Election;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming SHA-256 equals one-shot hashing for any chunking.
    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        let oneshot = sha256(&data);
        let mut hasher = Sha256::new();
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut start = 0;
        for cut in cuts {
            hasher.update(&data[start..cut]);
            start = cut;
        }
        hasher.update(&data[start..]);
        prop_assert_eq!(hasher.finalize(), oneshot);
    }

    /// Codec round trips for random primitive compositions.
    #[test]
    fn codec_round_trips(
        a in any::<u64>(),
        b in any::<bool>(),
        s in ".{0,64}",
        v in proptest::collection::vec(any::<u32>(), 0..32),
        o in proptest::option::of(any::<u64>()),
    ) {
        fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
            let bytes = value.encode_to_vec();
            assert_eq!(bytes.len(), value.encoded_len());
            let back: T = decode_exact(&bytes).unwrap();
            assert_eq!(back, value);
        }
        rt(a);
        rt(b);
        rt(s.to_string());
        rt(v);
        rt(o);
    }

    /// Merkle proofs verify for every leaf, and fail for any other leaf.
    #[test]
    fn merkle_proofs_sound(
        seed_leaves in proptest::collection::vec(any::<u64>(), 1..40),
        probe in any::<usize>(),
    ) {
        let leaves: Vec<Digest> = seed_leaves.iter().map(|s| sha256(&s.to_be_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let index = probe % leaves.len();
        let proof = tree.prove(index).unwrap();
        prop_assert!(proof.verify(&tree.root(), &leaves[index]));
        // Wrong leaf must fail (when distinct).
        let other = (index + 1) % leaves.len();
        if leaves[other] != leaves[index] {
            prop_assert!(!proof.verify(&tree.root(), &leaves[other]));
        }
    }

    /// The trie agrees with a HashMap model under arbitrary
    /// insert/overwrite/remove interleavings, and its root is
    /// history-independent (same content ⇒ same root).
    #[test]
    fn trie_matches_model(
        ops in proptest::collection::vec((any::<u8>(), 0u8..16, proptest::collection::vec(any::<u8>(), 0..6)), 1..60)
    ) {
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (op, key_byte, value) in &ops {
            let key = vec![*key_byte];
            if *op % 4 == 0 {
                root = db.remove(root, &key);
                model.remove(&key);
            } else {
                root = db.insert(root, &key, value.clone());
                model.insert(key, value.clone());
            }
        }
        for (key, value) in &model {
            prop_assert_eq!(db.get(root, key), Some(value.as_slice()));
        }
        prop_assert_eq!(db.iter(root).len(), model.len());

        // Rebuild from the final content in sorted order: same root.
        let mut db2 = TrieDb::new();
        let mut root2 = TrieDb::EMPTY_ROOT;
        let mut items: Vec<_> = model.iter().collect();
        items.sort();
        for (key, value) in items {
            root2 = db2.insert(root2, key, value.clone());
        }
        prop_assert_eq!(root2, root);
    }

    /// Difficulty retargeting is clamped and positive.
    #[test]
    fn retarget_bounded(
        old in 1u64..u64::MAX / 8,
        span in 1u64..u64::MAX / 8,
    ) {
        let params = RetargetParams {
            target_interval_micros: 600_000_000,
            window: 100,
            max_step: 4,
        };
        let new = retarget(&params, old, span);
        prop_assert!(new >= 1);
        prop_assert!(new <= old.saturating_mul(4).max(1));
        prop_assert!(new >= old / 4 || old < 4);
    }

    /// Elections: the winner's tally is maximal, and total cast weight
    /// never exceeds the sum of voted weights.
    #[test]
    fn election_winner_is_maximal(
        votes in proptest::collection::vec((0u8..20, 1u64..1000, 0u8..4), 1..50)
    ) {
        let mut election = Election::new();
        for (rep, weight, candidate) in &votes {
            election.vote(
                dlt_crypto::keys::Address::from_label(&format!("r{rep}")),
                *weight,
                sha256(&[*candidate]),
            );
        }
        let (winner, winner_weight) = election.leader().unwrap();
        for candidate in 0u8..4 {
            let hash = sha256(&[candidate]);
            if hash != winner {
                // No other candidate can strictly exceed the winner.
                // (Equal weight ties break deterministically.)
            }
        }
        prop_assert!(winner_weight > 0);
        let total: u64 = votes.iter().map(|(_, w, _)| *w).sum();
        prop_assert!(election.total_cast() <= total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The lattice conserves total supply under any valid interleaving
    /// of sends and receives, and rollback restores conservation.
    #[test]
    fn lattice_conserves_supply(
        transfers in proptest::collection::vec((0usize..4, 0usize..4, 1u64..50), 1..12),
        rollback_choice in any::<usize>(),
    ) {
        let params = LatticeParams {
            work_difficulty_bits: 1,
            verify_signatures: true,
            verify_work: true,
        };
        let supply = 1_000_000u64;
        let mut genesis = NanoAccount::from_seed([1u8; 32], 8, 1);
        let mut lattice = Lattice::new(params, genesis.genesis_block(supply));
        let mut accounts: Vec<NanoAccount> = (0..4)
            .map(|i| NanoAccount::from_seed([10 + i as u8; 32], 8, 1))
            .collect();
        // Fund everyone.
        let mut funded = Vec::new();
        for account in accounts.iter_mut() {
            let send = genesis.send(account.address(), 1_000).unwrap();
            let hash = lattice.process(send).unwrap();
            lattice.process(account.receive(hash, 1_000).unwrap()).unwrap();
        }
        // Random (valid) transfers; skip self-sends and over-spends.
        let mut settled_sends = Vec::new();
        for (from, to, amount) in transfers {
            if from == to {
                continue;
            }
            let to_address = accounts[to].address();
            let Ok(send) = accounts[from].send(to_address, amount) else {
                continue;
            };
            let hash = lattice.process(send).unwrap();
            let receive = accounts[to].receive(hash, amount).unwrap();
            lattice.process(receive).unwrap();
            settled_sends.push(hash);
            funded.push(hash);
            prop_assert_eq!(lattice.circulating_total(), supply);
        }
        // Roll one settled transfer back (cascades through the receive).
        if !settled_sends.is_empty() {
            let victim = settled_sends[rollback_choice % settled_sends.len()];
            if lattice.rollback(&victim).is_ok() {
                prop_assert_eq!(lattice.circulating_total(), supply);
            }
        }
    }
}
