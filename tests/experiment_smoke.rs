//! Smoke coverage for the e01–e18 experiment binaries.
//!
//! Runs every experiment with `DLT_SMOKE=1` (tiny parameters) through
//! `cargo run --offline`, asserting each exits 0 and writes a valid,
//! non-empty JSON report via `DLT_JSON_OUT`. A separate test runs
//! e04, e09, e10 and e18 twice each with their fixed seeds and requires
//! byte-identical stdout and JSON — the workspace-wide determinism
//! guarantee CI leans on. A third test runs e09 with `DLT_TRACE=1`
//! and asserts the emitted event log is parseable, non-empty JSON.

use std::path::{Path, PathBuf};
use std::process::Command;

use dlt_testkit::json;

/// Every experiment binary with the banner id its report must carry.
const EXPERIMENTS: &[(&str, &str)] = &[
    ("e01_structures", "e01"),
    ("e02_lattice", "e02"),
    ("e03_settlement", "e03"),
    ("e04_forks", "e04"),
    ("e05_confidence", "e05"),
    ("e06_dag_confirm", "e06"),
    ("e07_ledger_size", "e07"),
    ("e08_pruning", "e08"),
    ("e09_throughput", "e09"),
    ("e10_consensus", "e10"),
    ("e11_blocksize", "e11"),
    ("e12_channels", "e12"),
    ("e13_sharding", "e13"),
    ("e14_retarget", "e14"),
    ("e15_energy", "e15"),
    ("e16_plasma", "e16"),
    ("e17_tangle", "e17"),
    ("e18_faults", "e18"),
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ lives under the workspace root")
        .to_path_buf()
}

/// Runs one experiment binary in smoke mode, returning its stdout and
/// the JSON report it wrote.
fn run_experiment(bin: &str, tag: &str) -> (String, String) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let json_out =
        std::env::temp_dir().join(format!("dlt_smoke_{bin}_{tag}_{}.json", std::process::id()));
    let output = Command::new(cargo)
        .current_dir(workspace_root())
        .args([
            "run",
            "--quiet",
            "--offline",
            "-p",
            "dlt-bench",
            "--bin",
            bin,
        ])
        .env("DLT_SMOKE", "1")
        .env("DLT_JSON_OUT", &json_out)
        .output()
        .expect("spawn cargo run");
    assert!(
        output.status.success(),
        "{bin} failed with {:?}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    let report = std::fs::read_to_string(&json_out)
        .unwrap_or_else(|err| panic!("{bin} wrote no JSON report: {err}"));
    std::fs::remove_file(&json_out).ok();
    (stdout, report)
}

fn assert_valid_report(bin: &str, id: &str, report: &str) {
    let parsed =
        json::parse(report).unwrap_or_else(|err| panic!("{bin} report is not valid JSON: {err}"));
    assert_eq!(
        parsed.get("id").and_then(|v| v.as_str()),
        Some(id),
        "{bin} report carries the wrong experiment id"
    );
    let tables = parsed
        .get("tables")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("{bin} report has no tables array"));
    assert!(!tables.is_empty(), "{bin} captured no tables");
    for table in tables {
        let headers = table
            .get("headers")
            .and_then(|v| v.as_array())
            .expect("table has headers");
        let rows = table
            .get("rows")
            .and_then(|v| v.as_array())
            .expect("table has rows");
        for row in rows {
            assert_eq!(
                row.as_array().expect("row is an array").len(),
                headers.len(),
                "{bin} row arity drifted from its header"
            );
        }
    }
}

#[test]
fn every_experiment_exits_zero_with_a_valid_json_report() {
    for &(bin, id) in EXPERIMENTS {
        let (stdout, report) = run_experiment(bin, "a");
        assert!(
            stdout.contains(&format!("{id}:")),
            "{bin} stdout is missing its banner"
        );
        assert_valid_report(bin, id, &report);
    }
}

#[test]
fn sim_experiments_are_byte_deterministic_across_runs() {
    // e04 exercises the miner network, e09 the workload adapters,
    // e10 the consensus primitives, e18 the fault-injection
    // interceptor — together they cover the refactored engine,
    // metrics, payload-sharing, and fault paths.
    for bin in ["e04_forks", "e09_throughput", "e10_consensus", "e18_faults"] {
        let (stdout_first, report_first) = run_experiment(bin, "b");
        let (stdout_second, report_second) = run_experiment(bin, "c");
        assert_eq!(
            stdout_first, stdout_second,
            "{bin} stdout differs between seeded runs"
        );
        assert_eq!(
            report_first, report_second,
            "{bin} JSON differs between seeded runs"
        );
    }
}

#[test]
fn dlt_trace_emits_a_parseable_event_log() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let trace_out = std::env::temp_dir().join(format!("dlt_trace_e09_{}.json", std::process::id()));
    let output = Command::new(cargo)
        .current_dir(workspace_root())
        .args([
            "run",
            "--quiet",
            "--offline",
            "-p",
            "dlt-bench",
            "--bin",
            "e09_throughput",
        ])
        .env("DLT_SMOKE", "1")
        .env("DLT_TRACE", "1")
        .env("DLT_TRACE_OUT", &trace_out)
        .output()
        .expect("spawn cargo run");
    assert!(
        output.status.success(),
        "traced e09 failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&trace_out).expect("DLT_TRACE=1 wrote an event log");
    std::fs::remove_file(&trace_out).ok();
    let parsed = json::parse(&text).expect("trace log is valid JSON");
    let events = parsed
        .get("events")
        .and_then(|v| v.as_array())
        .expect("trace log has an events array");
    assert!(!events.is_empty(), "trace log captured no events");
    // The workload milestones must be present alongside any engine
    // events.
    let has_mark = events.iter().any(|e| {
        e.get("type").and_then(|v| v.as_str()) == Some("mark")
            && e.get("label").and_then(|v| v.as_str()) == Some("workload.offered")
    });
    assert!(has_mark, "trace log is missing workload milestone marks");
}
