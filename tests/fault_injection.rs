//! Integration: adversarial fault schedules via the `dlt-sim`
//! [`FaultInterceptor`], on both paradigms.
//!
//! These scenarios drive the fault layer harder than the unit tests in
//! `dlt-sim::fault`: a lossy partitioned blockchain that must still
//! converge after the heal with a bounded reorg (§IV-A), a DAG whose
//! voting quorum tolerates a Byzantine-late half of the network, and a
//! double-spend race fought under 30% message loss (§IV-B). All faults
//! are seed-driven: every run of this file sees the identical schedule.

use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_crypto::keys::Address;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::LatticeParams;
use dlt_dag::node::{DagMsg, DagNode, DagNodeConfig};
use dlt_sim::engine::Simulation;
use dlt_sim::fault::FaultInterceptor;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

fn miner_config(hashrate: f64) -> MinerConfig<UtxoTx> {
    MinerConfig {
        hashrate,
        mine: true,
        subsidy: 0,
        block_capacity: 1_000_000,
        retarget: RetargetParams {
            target_interval_micros: 1_000_000,
            window: 1_000_000, // static difficulty
            max_step: 4,
        },
        miner_address: Address::ZERO,
        coinbase: None,
        mempool_capacity: 16,
    }
}

/// A lossy, partitioned blockchain: 30% of messages are dropped *and*
/// the network is split into unequal halves for the first 60 seconds.
/// After the heal the nodes exchange branches (the IBD resync real
/// nodes perform) and must converge on the heavy half's chain with the
/// reorg depth bounded by what the light half could have mined.
#[test]
fn blockchain_converges_after_lossy_partition() {
    let heal = SimTime::from_secs(60);
    let mut sim: Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> =
        Simulation::new(11, LatencyModel::Fixed(SimTime::from_millis(20)));
    // Heavy half mines 70% of the blocks, light half 30%.
    for rate in [0.35, 0.35, 0.15, 0.15] {
        sim.add_node(MinerNode::new(Block::empty_genesis(), miner_config(rate)));
    }
    let left = [NodeId(0), NodeId(1)];
    let right = [NodeId(2), NodeId(3)];
    sim.set_interceptor(
        FaultInterceptor::new(7)
            .drop_messages(0.3)
            .during(SimTime::ZERO, heal)
            .partition(4, &[&left, &right])
            .during(SimTime::ZERO, heal),
    );

    sim.run_until(heal);
    let heights_at_heal: Vec<u64> = (0..4usize)
        .map(|i| sim.node(NodeId(i)).chain().tip_height())
        .collect();
    let left_height = heights_at_heal[0];
    let right_height = heights_at_heal[2];
    assert_ne!(
        sim.node(NodeId(0)).chain().tip(),
        sim.node(NodeId(2)).chain().tip(),
        "partition produced divergent chains"
    );
    assert!(left_height > right_height, "heavy side mined more");

    // Heal-time resync: every node offers its active branch to every
    // peer. `deliver_at` bypasses both the network and the interceptor,
    // which is the point — IBD is a reliable fetch, not gossip.
    let exchange_at = heal.saturating_add(SimTime::from_millis(1));
    for from in 0..4usize {
        let branch: Vec<Block<UtxoTx>> = sim
            .node(NodeId(from))
            .chain()
            .iter_active()
            .filter(|b| !b.header.is_genesis())
            .cloned()
            .collect();
        for to in (0..4usize).filter(|&to| to != from) {
            for block in &branch {
                sim.deliver_at(
                    exchange_at,
                    NodeId(from),
                    NodeId(to),
                    NetMsg::Block(block.clone()),
                );
            }
        }
    }
    sim.run_until(SimTime::from_secs(90));
    sim.run_until_idle(SimTime::from_secs(120));

    // The settled prefix (6 blocks below the lowest tip, §IV-A) is
    // identical everywhere; the light side reorged onto the heavy
    // branch and kept its own blocks as stale data.
    let settle = (0..4usize)
        .map(|i| sim.node(NodeId(i)).chain().tip_height())
        .min()
        .unwrap()
        .saturating_sub(6);
    let prefix: Vec<_> = (0..4usize)
        .map(|i| sim.node(NodeId(i)).chain().active_at(settle))
        .collect();
    assert!(prefix[0].is_some(), "chain grew past the settled prefix");
    assert!(
        prefix.windows(2).all(|w| w[0] == w[1]),
        "all nodes agree on the settled prefix"
    );
    assert!(
        sim.metrics().count("node.reorgs") > 0,
        "healing forced reorgs"
    );
    let deepest = (0..4usize)
        .map(|i| sim.node(NodeId(i)).deepest_reorg())
        .max()
        .unwrap();
    assert!(deepest >= 1, "the losing half rewound at least one block");
    // 30% loss also forks nodes *within* each half, so the deepest
    // rewind can exceed the light half's branch — but it can never
    // exceed the longest chain anyone held when the branches met.
    let longest_at_heal = *heights_at_heal.iter().max().unwrap();
    assert!(
        deepest <= longest_at_heal,
        "reorg depth ({deepest}) bounded by the longest pre-heal chain ({longest_at_heal})"
    );
    assert!(
        sim.node(NodeId(2)).chain().stale_block_count() > 0,
        "the light branch survives as stale blocks"
    );
}

const BITS: u32 = 2;

fn dag_params() -> LatticeParams {
    LatticeParams {
        work_difficulty_bits: BITS,
        verify_signatures: true,
        verify_work: true,
    }
}

/// `n` representative nodes with equal delegated shares, plus the
/// funded accounts (index i delegates to rep i).
fn dag_network(
    seed: u64,
    n: usize,
    quorum_fraction: f64,
) -> (Simulation<DagMsg, DagNode>, Vec<NanoAccount>) {
    let mut genesis = NanoAccount::from_seed([9u8; 32], 8, BITS);
    let genesis_block = genesis.genesis_block(1_000_000);
    let mut rep_accounts: Vec<NanoAccount> = (0..n)
        .map(|i| NanoAccount::from_seed([10 + i as u8; 32], 8, BITS))
        .collect();
    let share = 1_000_000 / (n as u64 + 1);
    let mut bootstrap = Vec::new();
    for rep in rep_accounts.iter_mut() {
        let send = genesis.send(rep.address(), share).unwrap();
        let send_hash = send.hash();
        bootstrap.push(send);
        bootstrap.push(rep.receive(send_hash, share).unwrap());
    }

    let mut sim: Simulation<DagMsg, DagNode> =
        Simulation::new(seed, LatencyModel::Fixed(SimTime::from_millis(20)));
    for rep_account in rep_accounts.iter().take(n) {
        let config = DagNodeConfig {
            representative: Some(rep_account.address()),
            quorum_fraction,
            cement_on_confirm: true,
        };
        let mut node = DagNode::new(dag_params(), genesis_block.clone(), config);
        for block in &bootstrap {
            node.bootstrap(block.clone());
        }
        sim.add_node(node);
    }
    (sim, rep_accounts)
}

/// Byzantine scheduling: half the representatives hear every message a
/// full second late. The 0.5 quorum (3 of 4 reps at 200k weight each)
/// cannot be met by the prompt half alone, so every confirmation has
/// to wait for a delayed vote — quorum still lands, but confirmation
/// latency absorbs the adversarial delay.
#[test]
fn dag_quorum_tolerates_byzantine_late_half() {
    let reps = 4usize;
    let (mut sim, mut accounts) = dag_network(21, reps, 0.5);
    sim.set_interceptor(
        FaultInterceptor::new(3).lag_nodes(&[NodeId(2), NodeId(3)], SimTime::from_secs(1)),
    );

    let sends = 3usize;
    let recipient = Address::from_label("shop");
    for s in 0..sends {
        let block = accounts[0].send(recipient, 10).unwrap();
        sim.deliver_at(
            SimTime::from_millis(500 * (s as u64 + 1)),
            NodeId(0),
            NodeId(0),
            DagMsg::Publish(block),
        );
    }
    sim.run_until_idle(SimTime::from_secs(60));

    for i in 0..reps {
        assert!(
            sim.node(NodeId(i)).confirmed_count() >= sends,
            "node {i} confirmed all sends despite the late half"
        );
    }
    // The prompt half (nodes 0, 1) measures the adversarial delay in
    // full: their quorum waits on a vote that arrives a second late.
    // The lagged half sees everything uniformly shifted, so *its*
    // local latency stays small — the max captures the damage, the
    // mean still sits well above the ~40ms fault-free baseline.
    let max_latency = sim
        .metrics()
        .max("dag.confirm_latency_ms")
        .expect("confirmations were recorded");
    let mean_latency = sim.metrics().mean("dag.confirm_latency_ms").unwrap();
    assert!(
        max_latency >= 900.0,
        "worst confirmation ({max_latency:.1} ms) absorbs the 1s Byzantine lag"
    );
    assert!(
        mean_latency >= 250.0,
        "mean confirmation ({mean_latency:.1} ms) sits far above the fault-free baseline"
    );
    assert!(sim.metrics().count("dag.votes_cast") >= reps as u64);
}

/// A double-spend race fought under 30% message loss: two conflicting
/// sends for the same chain position, published at opposite ends of a
/// 5-rep network. Weighted voting must still settle on exactly one
/// branch everywhere, flipping the election leader at least once along
/// the way and rolling the losing branch back wherever it was adopted
/// first.
#[test]
fn dag_double_spend_settles_one_winner_under_loss() {
    let reps = 5usize;
    // 0.4 quorum: 400_000 of the 1M supply. Each rep holds 166_666, so
    // three prompt votes (499_998) clear it even when drops thin the
    // vote flood.
    let (mut sim, mut accounts) = dag_network(31, reps, 0.4);
    sim.set_interceptor(FaultInterceptor::new(17).drop_messages(0.3));

    let attacker = &mut accounts[reps - 1];
    let mut attacker_fork = attacker.fork_state();
    let honest = attacker.send(Address::from_label("merchant"), 100).unwrap();
    let double = attacker_fork
        .send(Address::from_label("mule"), 100)
        .unwrap();
    let (honest_hash, double_hash) = (honest.hash(), double.hash());
    sim.deliver_at(
        SimTime::from_millis(1),
        NodeId(0),
        NodeId(0),
        DagMsg::Publish(honest),
    );
    sim.deliver_at(
        SimTime::from_millis(1),
        NodeId(reps - 1),
        NodeId(reps - 1),
        DagMsg::Publish(double),
    );
    sim.run_until_idle(SimTime::from_secs(60));

    let confirmed_honest = (0..reps)
        .filter(|i| sim.node(NodeId(*i)).is_confirmed(&honest_hash))
        .count();
    let confirmed_double = (0..reps)
        .filter(|i| sim.node(NodeId(*i)).is_confirmed(&double_hash))
        .count();
    assert!(
        (confirmed_honest == reps && confirmed_double == 0)
            || (confirmed_double == reps && confirmed_honest == 0),
        "one winner network-wide (honest: {confirmed_honest}, double: {confirmed_double})"
    );
    let winner = if confirmed_honest == reps {
        honest_hash
    } else {
        double_hash
    };
    for i in 0..reps {
        assert!(
            sim.node(NodeId(i)).lattice().contains(&winner),
            "node {i} adopted the winning branch"
        );
    }
    assert!(
        sim.metrics().count("dag.forks_detected") > 0,
        "the conflicting publishes registered as a fork"
    );
    assert!(
        sim.metrics().count("dag.vote_flips") >= 1,
        "the contested election flipped leaders at least once"
    );
    assert!(
        sim.metrics().count("dag.losing_branches_rolled_back") >= 1,
        "some node rolled back its first-seen losing branch"
    );
}
