//! Integration: deterministic trace replay as a regression fixture.
//!
//! A seeded e04-style fork run (miners under drop + reorder faults) is
//! recorded once into `tests/fixtures/e04_fork_run.json`. The tests
//! assert three layers of determinism:
//!
//! 1. re-recording the run today still produces the committed fixture
//!    byte-for-byte (the engine, RNG and fault schedule are frozen);
//! 2. replaying the committed fixture through a
//!    [`ReplayInterceptor`] reproduces the recorded delivery schedule
//!    exactly — identical metrics and an identical re-recorded trace;
//! 3. (property) *any* fault policy keeps the engine's dispatch order
//!    deterministic: two same-seed runs dispatch the identical
//!    `(time, seq)` sequence, and that sequence is sorted.
//!
//! Regenerate the fixture after an intentional engine change with
//! `DLT_REGEN_FIXTURES=1 cargo test -p dlt-integration-tests --test
//! trace_replay`.

use std::path::{Path, PathBuf};

use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_crypto::keys::Address;
use dlt_sim::engine::{Context, Payload, SimNode, Simulation};
use dlt_sim::fault::{FaultInterceptor, ReplayInterceptor, ReplayScript};
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;
use dlt_sim::trace::{RecordingTracer, TraceEvent};

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("e04_fork_run.json")
}

fn miner_config(hashrate: f64) -> MinerConfig<UtxoTx> {
    MinerConfig {
        hashrate,
        mine: true,
        subsidy: 0,
        block_capacity: 1_000_000,
        retarget: RetargetParams {
            target_interval_micros: 1_000_000,
            window: 1_000_000, // static difficulty
            max_step: 4,
        },
        miner_address: Address::ZERO,
        coinbase: None,
        mempool_capacity: 16,
    }
}

/// The frozen scenario behind the fixture: three miners race forks for
/// 20 simulated seconds while 15% of messages drop and a quarter are
/// reordered inside a 400ms window.
fn fork_run() -> Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> {
    let mut sim = Simulation::new(
        4242,
        LatencyModel::LogNormal {
            median: SimTime::from_millis(400),
            sigma: 0.3,
        },
    );
    for rate in [0.5, 0.3, 0.2] {
        sim.add_node(MinerNode::new(Block::empty_genesis(), miner_config(rate)));
    }
    sim
}

const RUN_FOR: SimTime = SimTime::from_secs(20);

fn faults() -> FaultInterceptor {
    FaultInterceptor::new(99)
        .drop_messages(0.15)
        .reorder(0.25, SimTime::from_millis(400))
}

/// Records the scenario, returning the trace JSON (with trailing
/// newline, as committed) and the metrics rendering.
fn record() -> (String, String) {
    let mut sim = fork_run();
    let tracer = RecordingTracer::new();
    let log = tracer.log();
    sim.set_tracer(tracer);
    sim.set_interceptor(faults());
    sim.run_until(RUN_FOR);
    (format!("{}\n", log.to_json()), format!("{}", sim.metrics()))
}

/// Replays the committed script, returning the re-recorded trace JSON
/// and the metrics rendering.
fn replay(script_text: &str) -> (String, String) {
    let script = ReplayScript::parse(script_text).expect("fixture parses");
    assert!(!script.is_empty(), "fixture records at least one send");
    let expected_sends = script.len();
    let replayer = ReplayInterceptor::new(script);
    let cursor = replayer.cursor();

    let mut sim = fork_run();
    let tracer = RecordingTracer::new();
    let log = tracer.log();
    sim.set_tracer(tracer);
    sim.set_interceptor(replayer);
    sim.run_until(RUN_FOR);

    assert_eq!(
        cursor.consumed(),
        expected_sends,
        "the replay consumed the whole recorded script"
    );
    (format!("{}\n", log.to_json()), format!("{}", sim.metrics()))
}

#[test]
fn recorded_fixture_is_current() {
    let (trace_json, _) = record();
    let path = fixture_path();
    if std::env::var("DLT_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &trace_json).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .expect("fixture exists; regenerate with DLT_REGEN_FIXTURES=1");
    assert_eq!(
        trace_json, committed,
        "re-recording the seeded fork run no longer matches \
         tests/fixtures/e04_fork_run.json; if the engine change is \
         intentional, regenerate with DLT_REGEN_FIXTURES=1"
    );
}

#[test]
fn committed_fixture_replays_byte_identically() {
    let committed = std::fs::read_to_string(fixture_path())
        .expect("fixture exists; regenerate with DLT_REGEN_FIXTURES=1");
    let (trace_a, metrics_a) = replay(&committed);
    let (trace_b, metrics_b) = replay(&committed);
    assert_eq!(metrics_a, metrics_b, "replayed metrics are deterministic");
    assert_eq!(trace_a, trace_b, "replayed traces are deterministic");
    // The replay doesn't merely agree with itself — it reproduces the
    // recorded run exactly, fault schedule included.
    assert_eq!(
        trace_a, committed,
        "replaying the fixture reproduces the recorded trace"
    );
    let (_, recorded_metrics) = record();
    assert_eq!(
        metrics_a, recorded_metrics,
        "replaying the fixture reproduces the recorded metrics"
    );
}

/// A node that relays a hop-counted token around the ring, with
/// fan-out 2 — enough traffic to exercise every fault action.
struct Relay;

impl SimNode<u64> for Relay {
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: Payload<u64>) {
        let hops = *msg;
        if hops == 0 {
            return;
        }
        let n = ctx.node_count();
        let me = ctx.node_id().0;
        ctx.send(NodeId((me + 1) % n), hops - 1);
        ctx.send(NodeId((me + 2) % n), hops - 1);
    }
}

/// Extracts the dispatch schedule: `(at, seq)` per dispatched event.
fn dispatch_sequence(events: &[TraceEvent]) -> Vec<(SimTime, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Dispatch { at, seq, .. } => Some((*at, *seq)),
            _ => None,
        })
        .collect()
}

dlt_testkit::prop! {
    /// Any composition of fault rules keeps the engine deterministic:
    /// two runs from the same seeds dispatch the identical event
    /// sequence, and that sequence is ordered by `(time, seq)`.
    fn any_fault_policy_preserves_dispatch_determinism(g, cases = 24) {
        let sim_seed = g.u64_below(1 << 20);
        let fault_seed = g.u64_below(1 << 20);
        let drop_p = g.f64_in(0.0, 0.5);
        let delay_p = g.f64_in(0.0, 0.5);
        let dup_p = g.f64_in(0.0, 0.5);
        let reorder_p = g.f64_in(0.0, 1.0);
        let window_ms = g.usize_in(1, 400) as u64;
        let lag_victim = g.usize_in(0, 3);

        let run = |_: ()| {
            let mut sim: Simulation<u64, Relay> = Simulation::new(
                sim_seed,
                LatencyModel::Uniform {
                    min: SimTime::from_millis(5),
                    max: SimTime::from_millis(50),
                },
            );
            for _ in 0..4 {
                sim.add_node(Relay);
            }
            sim.set_interceptor(
                FaultInterceptor::new(fault_seed)
                    .drop_messages(drop_p)
                    .delay(delay_p, SimTime::from_millis(120))
                    .duplicate(dup_p, SimTime::from_millis(30))
                    .reorder(reorder_p, SimTime::from_millis(window_ms))
                    .lag_nodes(&[NodeId(lag_victim)], SimTime::from_millis(250)),
            );
            let tracer = RecordingTracer::new();
            let log = tracer.log();
            sim.set_tracer(tracer);
            sim.deliver_at(SimTime::from_millis(1), NodeId(0), NodeId(0), 6u64);
            sim.run_until_idle(SimTime::from_secs(30));
            log.snapshot()
        };

        let first = dispatch_sequence(&run(()));
        let second = dispatch_sequence(&run(()));
        assert!(!first.is_empty(), "the token generated traffic");
        assert_eq!(first, second, "same seeds, same dispatch schedule");
        assert!(
            first.windows(2).all(|w| w[0] < w[1]),
            "dispatch schedule is strictly ordered by (time, seq)"
        );
    }
}
