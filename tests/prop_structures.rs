//! Property tests over chain, mempool, channel, sharding and tangle
//! structures, on the in-repo `dlt_testkit::prop!` harness.

use dlt_blockchain::block::testsupport::{test_block, test_genesis, test_tx};
use dlt_blockchain::chain::ChainStore;
use dlt_blockchain::mempool::Mempool;
use dlt_scaling::channels::{ChannelNetwork, ChannelPair};
use dlt_scaling::sharding::{ShardedNetwork, ShardingParams};
use dlt_sim::rng::SimRng;
use dlt_testkit::prop;

prop! {
    /// Chain store: any delivery order of the same block set yields the
    /// same tip (fork choice is order-independent up to work ties,
    /// which the distinct-difficulty construction avoids).
    fn chain_store_order_independent(g, cases = 48) {
        let order = g.vec_of(8, |g| g.any_usize());
        // A fixed tree: genesis -> a1 -> a2 -> a3 (difficulty 1 each)
        //              genesis -> b1 -> b2 (difficulty 3 each: heavier)
        let genesis = test_genesis();
        let a1 = test_block(&genesis, 1, 1);
        let a2 = test_block(&a1, 2, 1);
        let a3 = test_block(&a2, 3, 1);
        let b1 = test_block(&genesis, 10, 3);
        let b2 = test_block(&b1, 11, 3);
        let heavy_tip = b2.id();
        let mut blocks = vec![a1, a2, a3, b1, b2];

        // Permute by the random order vector.
        for (i, swap) in order.iter().enumerate() {
            let len = blocks.len();
            blocks.swap(i % len, swap % len);
        }
        let mut store = ChainStore::new(genesis, false);
        for block in blocks {
            let _ = store.insert(block);
        }
        assert_eq!(store.orphan_count(), 0, "everything connected");
        assert_eq!(store.tip(), heavy_tip, "most work wins regardless of order");
        assert_eq!(store.block_count(), 6);
    }
}

prop! {
    /// Mempool selection never exceeds capacity and never selects a
    /// lower fee-rate tx while skipping a higher one that would fit in
    /// its place.
    fn mempool_selection_feasible(g, cases = 48) {
        let txs = g.vec_in(1, 40, |g| (g.u64_in(1, 100), g.u64_in(1, 500)));
        let capacity = g.u64_in(100, 5_000);
        let mut pool = Mempool::new(1_000);
        for (i, (fee, weight)) in txs.iter().enumerate() {
            pool.insert(test_tx(i as u64, *fee, *weight));
        }
        let selected = pool.select_for_block(capacity);
        let total: u64 = selected.iter().map(|t| t.weight).sum();
        assert!(total <= capacity, "capacity respected");
        // Feasibility: every selected tx exists in the pool's input set.
        for tx in &selected {
            let known = txs
                .iter()
                .enumerate()
                .any(|(i, (f, w))| test_tx(i as u64, *f, *w).tag == tx.tag);
            assert!(known);
        }
    }
}

prop! {
    /// Channel updates conserve capacity no matter the payment pattern.
    fn channels_conserve_capacity(g, cases = 48) {
        let payments = g.vec_in(1, 40, |g| (g.any_bool(), g.u64_in(1, 50)));
        let mut network = ChannelNetwork::new();
        let mut pair = ChannelPair::open(&mut network, 5, 500, 500);
        for (a_to_b, amount) in payments {
            let update = if a_to_b {
                pair.pay_a_to_b(amount)
            } else {
                pair.pay_b_to_a(amount)
            };
            if let Ok(update) = update {
                network.apply_update(&update).unwrap();
                let channel = network.channel(pair.id).unwrap();
                assert_eq!(channel.capacity(), 1_000);
            }
        }
        let settlement = network.close_cooperative(pair.id).unwrap();
        assert_eq!(settlement.payout_a.1 + settlement.payout_b.1, 1_000);
    }
}

prop! {
    /// Sharding conserves transactions: submitted = completed + backlog.
    fn sharding_conserves_transactions(g, cases = 48) {
        let k = g.usize_in(1, 8);
        let f = g.f64_in(0.0, 1.0);
        let load = g.u64_in(1, 500);
        let steps = g.usize_in(1, 50);
        let mut net = ShardedNetwork::new(ShardingParams {
            shards: k,
            per_shard_rate: 20.0,
            cross_shard_fraction: f,
        });
        let mut rng = SimRng::new(9);
        net.submit(load, &mut rng);
        for _ in 0..steps {
            net.step(0.1);
        }
        assert!(net.completed() + net.backlog() as u64 >= net.submitted());
        // (Cross-shard txs appear in backlog as one phase each; the
        // inequality is ≥ because a cross tx mid-flight counts once.)
        assert!(net.completed() <= net.submitted());
    }
}

mod plasma_props {
    use dlt_crypto::keys::Address;
    use dlt_scaling::plasma::PlasmaChain;
    use dlt_testkit::prop;

    prop! {
        /// Plasma conserves deposits: whatever pattern of transfers and
        /// commits, the sum of all exits equals the sum of all deposits.
        fn plasma_conserves_deposits(g, cases = 32) {
            let transfers =
                g.vec_in(0, 30, |g| (g.u8_in(0, 4), g.u8_in(0, 4), g.u64_in(1, 100)));
            let commit_every = g.usize_in(1, 6);
            let users: Vec<Address> =
                (0..4).map(|i| Address::from_label(&format!("u{i}"))).collect();
            let mut plasma = PlasmaChain::new(1_000);
            let mut deposited = 0u64;
            for user in &users {
                plasma.deposit(*user, 500).unwrap();
                deposited += 500;
            }
            for (i, (from, to, amount)) in transfers.iter().enumerate() {
                if from != to {
                    let _ = plasma.submit(
                        users[*from as usize],
                        users[*to as usize],
                        *amount,
                    );
                }
                if i % commit_every == 0 {
                    plasma.commit_block().unwrap();
                }
            }
            plasma.commit_block().unwrap();
            let mut exited = 0u64;
            for user in &users {
                if let Ok(balance) = plasma.exit(*user) {
                    exited += balance;
                }
            }
            assert_eq!(exited, deposited);
        }
    }
}

mod tangle_props {
    use dlt_dag::tangle::{Tangle, TipSelection};
    use dlt_sim::rng::SimRng;
    use dlt_testkit::prop;

    prop! {
        /// Tangle invariants: weights are monotone along approval
        /// edges, tips have weight 0, and the genesis weight equals the
        /// number of non-genesis transactions.
        fn tangle_weight_invariants(g, cases = 24) {
            let n = g.usize_in(1, 80);
            let seed = g.any_u64();
            let mut tangle = Tangle::new(10);
            let mut rng = SimRng::new(seed);
            for i in 0..n {
                tangle.attach(
                    dlt_crypto::sha256::sha256(&(i as u64).to_be_bytes()),
                    TipSelection::UniformRandom,
                    &mut rng,
                );
            }
            assert_eq!(
                tangle.cumulative_weight(&tangle.genesis()),
                Some(n as u64),
                "genesis is approved by everything"
            );
            assert!(tangle.tip_count() >= 1);
        }
    }
}

/// Helpers exposed by dlt-blockchain for cross-crate testing.
mod helpers_exist {
    #[test]
    fn helpers_link() {
        let genesis = dlt_blockchain::block::testsupport::test_genesis();
        assert_eq!(genesis.header.height, 0);
    }
}
