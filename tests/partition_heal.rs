//! Integration: network partitions and healing on both paradigms.
//!
//! While partitioned, each side of a blockchain network grows its own
//! chain (a macro soft fork, §IV-A); on heal, everyone converges on the
//! most-work branch and the loser's blocks are orphaned. The DAG keeps
//! *disjoint account activity* consistent across a partition — chains
//! only conflict if one account signs on both sides.
//!
//! The partition itself is imposed by the `dlt-sim` fault layer: a
//! [`FaultInterceptor`] partition rule with a `during` window, so the
//! split heals by schedule instead of by mutating the network fabric
//! mid-run.

use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_crypto::keys::Address;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::LatticeParams;
use dlt_dag::node::{DagMsg, DagNode, DagNodeConfig};
use dlt_sim::engine::Simulation;
use dlt_sim::fault::FaultInterceptor;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

fn miner_config(rate: f64) -> MinerConfig<UtxoTx> {
    MinerConfig {
        hashrate: rate,
        mine: true,
        subsidy: 0,
        block_capacity: 1_000_000,
        retarget: RetargetParams {
            target_interval_micros: 1_000_000,
            window: 1_000_000,
            max_step: 4,
        },
        miner_address: Address::ZERO,
        coinbase: None,
        mempool_capacity: 16,
    }
}

#[test]
fn blockchain_partition_forks_then_converges() {
    let heal = SimTime::from_secs(120);
    let mut sim: Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> =
        Simulation::new(5, LatencyModel::Fixed(SimTime::from_millis(20)));
    // Unequal halves so one side accumulates more work.
    for rate in [0.4, 0.4, 0.1, 0.1] {
        sim.add_node(MinerNode::new(Block::empty_genesis(), miner_config(rate)));
    }
    let left = [NodeId(0), NodeId(1)];
    let right = [NodeId(2), NodeId(3)];
    sim.set_interceptor(
        FaultInterceptor::new(1)
            .partition(4, &[&left, &right])
            .during(SimTime::ZERO, heal),
    );
    sim.run_until(heal);

    let left_tip = sim.node(NodeId(0)).chain().tip();
    let right_tip = sim.node(NodeId(2)).chain().tip();
    assert_ne!(left_tip, right_tip, "partition produced divergent chains");
    let left_height = sim.node(NodeId(0)).chain().tip_height();
    let right_height = sim.node(NodeId(2)).chain().tip_height();
    assert!(left_height > right_height, "heavy side mined more");

    // The window has expired — the split is healed. Cross-pollinate:
    // each side releases its branch.
    for (from, to_side) in [(NodeId(0), right), (NodeId(2), left)] {
        let branch: Vec<_> = sim.node(from).chain().iter_active().cloned().collect();
        for block in branch.into_iter().skip(1) {
            for to in to_side {
                sim.deliver_at(sim.now(), from, to, NetMsg::Block(block.clone()));
            }
        }
    }
    sim.run_until_idle(sim.now() + SimTime::from_secs(60));

    // Everyone adopts the heavy side's branch.
    let tips: Vec<_> = (0..4).map(|i| sim.node(NodeId(i)).chain().tip()).collect();
    assert_eq!(tips[2], tips[0], "light side reorged onto the heavy branch");
    assert_eq!(tips[3], tips[0]);
    assert!(sim.metrics().count("node.reorgs") > 0);
    // The light branch became stale blocks, not lost data.
    assert!(sim.node(NodeId(2)).chain().stale_block_count() > 0);
}

#[test]
fn dag_partition_with_disjoint_accounts_merges_cleanly() {
    const BITS: u32 = 2;
    let params = LatticeParams {
        work_difficulty_bits: BITS,
        verify_signatures: true,
        verify_work: true,
    };
    let mut genesis = NanoAccount::from_seed([1u8; 32], 8, BITS);
    let genesis_block = genesis.genesis_block(1_000_000);

    // Two accounts funded before the partition.
    let mut left_account = NanoAccount::from_seed([2u8; 32], 8, BITS);
    let mut right_account = NanoAccount::from_seed([3u8; 32], 8, BITS);
    let mut bootstrap = Vec::new();
    for account in [&mut left_account, &mut right_account] {
        let send = genesis.send(account.address(), 100_000).unwrap();
        let hash = send.hash();
        bootstrap.push(send);
        bootstrap.push(account.receive(hash, 100_000).unwrap());
    }

    let heal = SimTime::from_secs(20);
    let mut sim: Simulation<DagMsg, DagNode> =
        Simulation::new(6, LatencyModel::Fixed(SimTime::from_millis(15)));
    for i in 0..4usize {
        let rep = if i < 2 {
            left_account.address()
        } else {
            right_account.address()
        };
        let mut node = DagNode::new(
            params,
            genesis_block.clone(),
            DagNodeConfig {
                representative: Some(rep),
                quorum_fraction: 0.5,
                cement_on_confirm: false,
            },
        );
        for block in &bootstrap {
            node.bootstrap(block.clone());
        }
        sim.add_node(node);
    }
    sim.set_interceptor(
        FaultInterceptor::new(2)
            .partition(4, &[&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]])
            .during(SimTime::ZERO, heal),
    );

    // Each side's account transacts independently.
    let left_send = left_account
        .send(Address::from_label("left-shop"), 10)
        .unwrap();
    let right_send = right_account
        .send(Address::from_label("right-shop"), 20)
        .unwrap();
    let (lh, rh) = (left_send.hash(), right_send.hash());
    sim.deliver_at(
        SimTime::from_millis(1),
        NodeId(0),
        NodeId(0),
        DagMsg::Publish(left_send),
    );
    sim.deliver_at(
        SimTime::from_millis(1),
        NodeId(2),
        NodeId(2),
        DagMsg::Publish(right_send),
    );
    sim.run_until_idle(SimTime::from_secs(10));

    // Each side has only its own block.
    assert!(sim.node(NodeId(0)).lattice().contains(&lh));
    assert!(!sim.node(NodeId(0)).lattice().contains(&rh));
    assert!(sim.node(NodeId(2)).lattice().contains(&rh));

    // Let the partition window expire, then republish both blocks
    // network-wide; no conflicts — both blocks coexist because they
    // live on different account chains.
    sim.run_until(heal);
    let left_block = sim.node(NodeId(0)).lattice().block(&lh).unwrap().clone();
    let right_block = sim.node(NodeId(2)).lattice().block(&rh).unwrap().clone();
    for i in 0..4 {
        sim.deliver_at(
            sim.now(),
            NodeId(0),
            NodeId(i),
            DagMsg::Publish(left_block.clone()),
        );
        sim.deliver_at(
            sim.now(),
            NodeId(2),
            NodeId(i),
            DagMsg::Publish(right_block.clone()),
        );
    }
    sim.run_until_idle(sim.now() + SimTime::from_secs(10));

    for i in 0..4usize {
        let lattice = sim.node(NodeId(i)).lattice();
        assert!(lattice.contains(&lh), "node {i} has the left block");
        assert!(lattice.contains(&rh), "node {i} has the right block");
        assert_eq!(lattice.circulating_total(), 1_000_000);
    }
    assert_eq!(
        sim.metrics().count("dag.forks_detected"),
        0,
        "disjoint account activity cannot conflict"
    );
}
