//! Quickstart: the three ledgers in a few dozen lines each.
//!
//! Run with `cargo run -p dlt-examples --bin quickstart`.

use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
use dlt_blockchain::utxo::Wallet;
use dlt_crypto::keys::Address;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::{Lattice, LatticeParams};

fn main() {
    // ------------------------------------------------------------------
    // Blockchain (paper §II-A): transactions bundled into linked blocks.
    // ------------------------------------------------------------------
    println!("--- blockchain (Bitcoin-like) ---");

    // A wallet with a genesis-funded address.
    let mut alice = Wallet::new(42);
    let alice_address = alice.new_address();
    let mut chain = BitcoinChain::new(BitcoinParams::default(), &[(alice_address, 1_000)]);

    // Alice pays Bob 250 with a fee of 5.
    let mut bob = Wallet::new(43);
    let bob_address = bob.new_address();
    let payment = alice
        .build_transfer(chain.ledger(), bob_address, 250, 5)
        .expect("alice is funded");
    let payment_id = dlt_blockchain::block::LedgerTx::id(&payment);
    chain.submit_tx(payment);

    // A miner includes it in a block; five more blocks bury it.
    let miner = Address::from_label("miner");
    for minute in (10..=60).step_by(10) {
        chain.mine_block(miner, minute * 60_000_000);
    }
    println!("chain height: {}", chain.chain().tip_height());
    println!("bob's balance: {}", chain.ledger().balance(&bob_address));
    println!(
        "payment confirmed at depth {} (paper's six-block rule): {}",
        chain.params().confirmation_depth,
        chain.is_confirmed(&payment_id)
    );

    // ------------------------------------------------------------------
    // DAG (paper §II-B): one transaction per block, one chain per
    // account, send/receive settlement.
    // ------------------------------------------------------------------
    println!("\n--- DAG (Nano-like block-lattice) ---");

    let params = LatticeParams::default();
    let mut genesis = NanoAccount::from_seed([1u8; 32], 6, params.work_difficulty_bits);
    let mut lattice = Lattice::new(params, genesis.genesis_block(1_000));
    let mut carol = NanoAccount::from_seed([2u8; 32], 6, params.work_difficulty_bits);

    // Genesis sends 400 to Carol: the transfer is *unsettled* until she
    // issues the matching receive (Fig. 3).
    let send = genesis.send(carol.address(), 400).expect("funded");
    let send_hash = lattice.process(send).expect("valid");
    println!(
        "after send: genesis={} carol={} settled={}",
        lattice.balance(&genesis.address()),
        lattice.balance(&carol.address()),
        lattice.is_settled(&send_hash),
    );
    let receive = carol.receive(send_hash, 400).expect("fresh key");
    lattice.process(receive).expect("valid");
    println!(
        "after receive: genesis={} carol={} settled={}",
        lattice.balance(&genesis.address()),
        lattice.balance(&carol.address()),
        lattice.is_settled(&send_hash),
    );
    println!(
        "carol's weight now backs her representative: {}",
        lattice.weight(&carol.address())
    );
}
