//! A coffee shop accepts micropayments through a payment channel
//! (paper §VI-A: Lightning/Raiden).
//!
//! Paying 3 units for every coffee on-chain would cost a fee and wait
//! out the block interval each time — and a 7 TPS base layer cannot
//! serve every coffee machine on the planet. A channel locks a prepaid
//! balance once, streams co-signed updates per coffee, and settles the
//! net result on chain at the end of the month.
//!
//! Run with `cargo run -p dlt-examples --bin coffee_shop_channels`.

use dlt_core::throughput::bitcoin_tps_range;
use dlt_scaling::channels::{ChannelNetwork, ChannelPair};

fn main() {
    let mut network = ChannelNetwork::new();

    // The customer prepays 300 into a channel with the shop.
    let mut channel = ChannelPair::open(&mut network, 2026, 300, 0);
    println!(
        "channel open: customer {} locked 300; on-chain txs so far: {}",
        channel.party_a(),
        network.total_onchain_txs
    );

    // A month of coffee: 90 cups at 3 units each, instantly and
    // fee-free, co-signed off-chain.
    for cup in 1..=90u32 {
        let update = channel.pay_a_to_b(3).expect("prepaid balance covers it");
        network
            .apply_update(&update)
            .expect("both signatures valid");
        if cup % 30 == 0 {
            let state = network.channel(channel.id).expect("open");
            println!(
                "after {cup} coffees: customer {} / shop {} (update #{})",
                state.balance_a, state.balance_b, state.seq
            );
        }
    }

    // Cooperative close records only the final balances on chain.
    let settlement = network.close_cooperative(channel.id).expect("open channel");
    println!(
        "\nchannel closed: customer takes {}, shop takes {}",
        settlement.payout_a.1, settlement.payout_b.1
    );
    println!(
        "90 payments consumed {} on-chain transactions (open + close) and {} \
         off-chain updates",
        settlement.onchain_txs, network.total_updates
    );

    let (_, base_tps) = bitcoin_tps_range();
    println!(
        "\nscaling arithmetic (§VI-A): a {base_tps:.0}-TPS base layer running \
         nothing but 90-payment channels carries {:.0} payments/s — channels \
         multiply throughput by the channel lifetime volume / 2.",
        base_tps * 90.0 / 2.0
    );

    // What if the shop tries to cheat at settlement time? See the e12
    // experiment and the `challenge` API: posting a stale state forfeits
    // the cheater's entire balance.
}
