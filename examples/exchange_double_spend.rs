//! An exchange defends against a double spend — on both paradigms.
//!
//! Scenario: an attacker deposits coins at an exchange, waits for the
//! deposit to be credited, and tries to claw the coins back with a
//! conflicting transaction. The example shows why the exchange's
//! confirmation policy (paper §IV) is what decides the outcome:
//!
//! * on the blockchain, a 1-confirmation exchange loses to a private
//!   two-block branch, while the 6-confirmation rule holds;
//! * on the DAG, the conflict triggers a representative election and
//!   the first-seen deposit wins the weighted vote.
//!
//! Run with `cargo run -p dlt-examples --bin exchange_double_spend`.

use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
use dlt_blockchain::block::{Block, BlockHeader, LedgerTx};
use dlt_blockchain::utxo::{UtxoTx, Wallet};
use dlt_core::confidence::revert_probability;
use dlt_crypto::keys::Address;
use dlt_crypto::Digest;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::{Lattice, LatticeError, LatticeParams};
use dlt_dag::voting::Election;

fn main() {
    blockchain_attack();
    dag_attack();
}

fn blockchain_attack() {
    println!("--- blockchain: private-branch double spend ---");
    let mut attacker = Wallet::new(7);
    let attacker_address = attacker.new_address();
    let mut chain = BitcoinChain::new(BitcoinParams::default(), &[(attacker_address, 500)]);
    let genesis_id = chain.chain().genesis();

    // The deposit lands in block 1.
    let exchange = Address::from_label("exchange-hot-wallet");
    let deposit = attacker
        .build_transfer(chain.ledger(), exchange, 500, 0)
        .expect("funded");
    let deposit_id = deposit.id();
    chain.submit_tx(deposit);
    chain.mine_block(Address::from_label("honest-miner"), 600_000_000);
    println!(
        "deposit mined; exchange sees balance {} at 1 confirmation",
        chain.ledger().balance(&exchange)
    );
    println!(
        "analysis (§IV-A): with 30% of hash power the attacker reverts a \
         1-conf deposit with P={:.2}, a 6-conf deposit with P={:.3}",
        revert_probability(0.30, 1),
        revert_probability(0.30, 6),
    );

    // The attacker mines a private 2-block branch from genesis that
    // never contained the deposit.
    let empty = |parent: Digest, height: u64, ts: u64| -> Block<UtxoTx> {
        Block::new(
            BlockHeader {
                parent,
                height,
                merkle_root: Digest::ZERO,
                state_root: Digest::ZERO,
                receipts_root: Digest::ZERO,
                timestamp_micros: ts,
                difficulty: 1,
                nonce: 0,
                gas_used: 0,
                gas_limit: 0,
                proposer: Address::ZERO,
            },
            vec![UtxoTx::coinbase(
                height,
                50,
                Address::from_label("attacker-miner"),
            )],
        )
    };
    let a1 = empty(genesis_id, 1, 700_000_000);
    let a2 = empty(a1.id(), 2, 800_000_000);
    chain.receive_block(a1).expect("valid branch");
    let outcome = chain.receive_block(a2).expect("valid branch");
    println!(
        "attacker releases a longer private branch -> {}",
        match outcome {
            dlt_blockchain::chain::InsertOutcome::Reorged { .. } => "REORG",
            _ => "no reorg",
        }
    );
    println!(
        "exchange balance after reorg: {} — the 1-conf deposit was orphaned \
         (tx back in mempool: {})",
        chain.ledger().balance(&exchange),
        chain.mempool().contains(&deposit_id),
    );
    println!(
        "had the exchange waited 6 confirmations, the attacker would have \
         needed to outrun 6 blocks of honest work — the §IV-A rule.\n"
    );
}

fn dag_attack() {
    println!("--- DAG: double send resolved by weighted vote ---");
    let params = LatticeParams {
        work_difficulty_bits: 4,
        ..LatticeParams::default()
    };
    let mut genesis = NanoAccount::from_seed([9u8; 32], 6, 4);
    let mut lattice = Lattice::new(params, genesis.genesis_block(1_000_000));

    // Fund the attacker.
    let mut attacker = NanoAccount::from_seed([10u8; 32], 6, 4);
    let send = genesis.send(attacker.address(), 10_000).expect("funded");
    let hash = lattice.process(send).expect("valid");
    lattice
        .process(attacker.receive(hash, 10_000).expect("key"))
        .expect("valid");

    // The attacker signs two conflicting sends from the same position.
    let mut cloned_state = attacker.fork_state();
    let deposit = attacker
        .send(Address::from_label("exchange"), 10_000)
        .expect("funded");
    let clawback = cloned_state
        .send(Address::from_label("attacker-stash"), 10_000)
        .expect("funded");

    let deposit_hash = lattice.process(deposit).expect("first seen wins a slot");
    match lattice.process(clawback.clone()) {
        Err(LatticeError::Fork { existing }) => {
            println!(
                "conflict detected: clawback {} disputes position held by deposit {}",
                clawback.hash().short(),
                existing.short()
            );
        }
        other => panic!("expected fork, got {other:?}"),
    }

    // Representatives vote with their delegated weight (§III-B).
    let mut election = Election::new();
    election.vote(
        genesis.address(),
        lattice.weight(&genesis.address()),
        deposit_hash,
    );
    election.vote(
        attacker.address(),
        lattice.weight(&attacker.address()),
        clawback.hash(),
    );
    let (winner, weight) = election.leader().expect("votes cast");
    println!(
        "vote: honest weight {} vs attacker weight {} -> winner {} ({})",
        lattice.weight(&genesis.address()),
        lattice.weight(&attacker.address()),
        winner.short(),
        if winner == deposit_hash {
            "deposit stands"
        } else {
            "clawback wins"
        },
    );
    assert_eq!(winner, deposit_hash);
    let _ = weight;

    // Cement it: the §IV-B finality the paper anticipates.
    lattice.cement(&deposit_hash).expect("known block");
    println!(
        "deposit cemented; rollback now refused: {:?}",
        lattice.rollback(&deposit_hash).unwrap_err()
    );
}
