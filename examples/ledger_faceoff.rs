//! The paper's comparison as one program: an identical payment
//! workload on all three ledgers, through the unified
//! `DistributedLedger` API.
//!
//! Run with `cargo run -p dlt-examples --bin ledger_faceoff`.

use dlt_blockchain::bitcoin::BitcoinParams;
use dlt_blockchain::ethereum::EthereumParams;
use dlt_core::ledger::{
    run_workload, BitcoinAdapter, EthereumAdapter, NanoAdapter, WorkloadConfig,
};
use dlt_dag::lattice::LatticeParams;
use dlt_sim::time::SimTime;

fn main() {
    // A modest everyone-pays-everyone workload at a compressed
    // timescale (block intervals ÷60 so the run finishes in seconds).
    let config = WorkloadConfig {
        offered_tps: 4.0,
        duration: SimTime::from_secs(90),
        drain: SimTime::from_secs(90),
        amount: 7,
        seed: 2018, // the paper's year
    };

    let mut bitcoin = BitcoinAdapter::new(
        BitcoinParams {
            max_block_bytes: 16_000, // 1 MB scaled by the same ÷60
            ..BitcoinParams::default()
        },
        SimTime::from_secs(10),
        6,
        80,
        10_000,
        1,
    );
    let mut ethereum = EthereumAdapter::new(
        EthereumParams::default(),
        SimTime::from_secs(1),
        6,
        100_000_000,
        10,
        1,
    );
    let mut nano = NanoAdapter::new(
        LatticeParams {
            work_difficulty_bits: 2,
            ..LatticeParams::default()
        },
        6,
        100_000_000,
        10,
        SimTime::from_millis(150),
        SimTime::from_millis(250),
        1,
    );

    println!(
        "identical workload: {} TPS offered for 90 s, then 90 s drain\n",
        config.offered_tps
    );
    println!(
        "{:<14} {:>9} {:>10} {:>8} {:>12} {:>10} {:>8}",
        "ledger", "confirmed", "TPS", "backlog", "ledger bytes", "bytes/tx", "blocks"
    );
    for report in [
        run_workload(&mut bitcoin, &config),
        run_workload(&mut ethereum, &config),
        run_workload(&mut nano, &config),
    ] {
        println!(
            "{:<14} {:>9} {:>10.2} {:>8} {:>12} {:>10.0} {:>8}",
            report.ledger,
            report.confirmed,
            report.confirmed_tps,
            report.backlog,
            report.ledger_bytes,
            report.bytes_per_tx,
            report.blocks
        );
    }

    println!(
        "\nwhat to notice (the paper's conclusions, §VII):\n\
         - the blockchains bundle many transfers per block; the DAG writes two\n\
           small blocks per transfer on the participants' own chains;\n\
         - bitcoin-like throughput is capped by block size × interval; the\n\
           nano-like ledger absorbs the full offered load;\n\
         - every ledger's size grows linearly — pruning (experiment e08) is\n\
           how all of them cope."
    );
}
